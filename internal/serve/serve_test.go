package serve

// Service-level tests: job lifecycle, byte-identical caching, per-job
// fault isolation (a poisoned job must not take its neighbours down),
// bounded-queue backpressure, graceful drain, and concurrent admission
// under the race detector.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dart/internal/obs"
	"dart/internal/progs"
)

// wait blocks until the job completes or the test deadline trips.
func wait(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never completed", j.ID)
	}
}

// decode parses a job's report bytes.
func decode(t *testing.T, b []byte) *JobReport {
	t.Helper()
	var rep JobReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, b)
	}
	return &rep
}

func TestJobLifecycle(t *testing.T) {
	s := New(Config{})
	defer s.Drain(time.Second)

	j, err := s.Submit(Submission{Source: progs.Section21, Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j1" {
		t.Errorf("first job id %q, want j1", j.ID)
	}
	wait(t, j)
	if j.State() != StateDone {
		t.Fatalf("state %q after Done, want done", j.State())
	}
	b, cached := j.Report()
	if cached {
		t.Error("first submission claims cached")
	}
	rep := decode(t, b)
	if rep.Functions != 2 || rep.Buggy != 1 || rep.Stopped {
		t.Errorf("report: functions=%d buggy=%d stopped=%v", rep.Functions, rep.Buggy, rep.Stopped)
	}
	// The paper's Section 2.1 bug, replayable inputs included.
	var h *JobEntry
	for i := range rep.Entries {
		if rep.Entries[i].Function == "h" {
			h = &rep.Entries[i]
		}
	}
	if h == nil || h.Status != "bugs" || len(h.Bugs) != 1 || h.Bugs[0].Inputs["d0.x"] != 10 {
		t.Errorf("h entry: %+v", h)
	}
}

// TestCachedByteIdentical is the store's core guarantee: an identical
// submission is served from the store, marked cached, and its bytes are
// identical to both the first run and a fresh run on a virgin service.
func TestCachedByteIdentical(t *testing.T) {
	sub := Submission{Source: progs.Section21, Seed: 7, Runs: 300}

	s := New(Config{})
	defer s.Drain(time.Second)
	first, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, first)
	fb, cached := first.Report()
	if cached {
		t.Fatal("first run claims cached")
	}

	second, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, second) // born done; returns immediately
	sb, cached := second.Report()
	if !cached {
		t.Fatal("identical resubmission not served from the store")
	}
	if !bytes.Equal(fb, sb) {
		t.Errorf("cached bytes differ from the first run:\n%s\n%s", fb, sb)
	}

	fresh := New(Config{})
	defer fresh.Drain(time.Second)
	fj, err := fresh.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, fj)
	freshB, _ := fj.Report()
	if !bytes.Equal(fb, freshB) {
		t.Errorf("cached bytes differ from a fresh service's run:\n%s\n%s", fb, freshB)
	}

	// A different seed is a different identity — never served from cache.
	other, err := s.Submit(Submission{Source: progs.Section21, Seed: 8, Runs: 300})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, other)
	if _, cached := other.Report(); cached {
		t.Error("different seed wrongly served from the store")
	}
}

// TestPoisonedJobIsolation is the acceptance test from the issue: one
// of N queued jobs panics in its executor; the others finish normally
// and the poisoned one degrades to an honest partial report after
// bounded retries — the service itself never goes down.
func TestPoisonedJobIsolation(t *testing.T) {
	const n = 5
	s := New(Config{Executors: 2, MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer s.Drain(time.Second)
	s.beforeRun = func(j *Job) {
		if j.ID == "j3" {
			panic("poisoned job")
		}
	}

	var jobs []*Job
	for i := 0; i < n; i++ {
		j, err := s.Submit(Submission{Source: progs.Section21, Seed: int64(100 + i), Runs: 100})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		wait(t, j)
	}
	for _, j := range jobs {
		b, _ := j.Report()
		rep := decode(t, b)
		if j.ID == "j3" {
			if !rep.Stopped || rep.StopReason != "internal-fault" {
				t.Errorf("poisoned job: stopped=%v reason=%q", rep.Stopped, rep.StopReason)
			}
			if !strings.Contains(rep.Error, "poisoned job") {
				t.Errorf("poisoned job error %q does not name the panic", rep.Error)
			}
			j.mu.Lock()
			retries := j.retries
			j.mu.Unlock()
			if retries != 1 {
				t.Errorf("poisoned job retries = %d, want 1 (MaxRetries)", retries)
			}
			continue
		}
		if rep.Stopped || rep.Buggy != 1 {
			t.Errorf("%s: healthy neighbour damaged: stopped=%v buggy=%d", j.ID, rep.Stopped, rep.Buggy)
		}
	}
}

// TestPoisonedReportNotCached: a degraded report must never be served
// to a later identical submission.
func TestPoisonedReportNotCached(t *testing.T) {
	s := New(Config{MaxRetries: 0, RetryBackoff: time.Millisecond})
	defer s.Drain(time.Second)
	poison := true
	var mu sync.Mutex
	s.beforeRun = func(*Job) {
		mu.Lock()
		p := poison
		mu.Unlock()
		if p {
			panic("transient")
		}
	}
	sub := Submission{Source: progs.Section21, Runs: 100}
	j1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	if rep := decode(t, firstBytes(j1)); rep.StopReason != "internal-fault" {
		t.Fatalf("poisoned run stop reason %q", rep.StopReason)
	}
	mu.Lock()
	poison = false
	mu.Unlock()
	j2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	if _, cached := j2.Report(); cached {
		t.Error("degraded report was cached and served")
	}
	if rep := decode(t, firstBytes(j2)); rep.StopReason != "" || rep.Buggy != 1 {
		t.Errorf("healthy rerun: %+v", rep)
	}
}

func firstBytes(j *Job) []byte { b, _ := j.Report(); return b }

// gate blocks executors until released, so tests can hold jobs
// in-flight deterministically.
type gate struct {
	mu       sync.Mutex
	released bool
	ch       chan struct{}
}

func newGate() *gate { return &gate{ch: make(chan struct{})} }

func (g *gate) hold(j *Job) {
	select {
	case <-g.ch:
	case <-j.cancel:
	}
}

func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.released {
		g.released = true
		close(g.ch)
	}
}

// TestQueueFullRejects: with one blocked executor and a depth-2 queue,
// the fourth submission must be refused with ErrQueueFull — load is
// shed at admission, memory never grows.
func TestQueueFullRejects(t *testing.T) {
	g := newGate()
	s := New(Config{Executors: 1, QueueDepth: 2})
	defer func() { g.release(); s.Drain(time.Second) }()
	s.beforeRun = func(j *Job) { g.hold(j) }

	first, err := s.Submit(Submission{Source: progs.Section21, Seed: 1, Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the executor holds the first job, so the queue's two
	// slots are demonstrably free before the flood.
	deadline := time.Now().Add(5 * time.Second)
	for s.Gauges()["jobs_running"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("executor never picked the first job up")
		}
		time.Sleep(time.Millisecond)
	}

	jobs := []*Job{first}
	for i := 0; ; i++ {
		j, err := s.Submit(Submission{Source: progs.Section21, Seed: int64(i + 2), Runs: 50})
		if errors.Is(err, ErrQueueFull) {
			// 1 running + 2 queued is the most the service will hold.
			if len(jobs) != 3 {
				t.Errorf("rejected after %d admissions, want 3", len(jobs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		if i > 10 {
			t.Fatal("queue never filled")
		}
	}
	if ready, why := s.Ready(); ready {
		t.Error("Ready() true with a saturated queue")
	} else if why != "queue saturated" {
		t.Errorf("readiness reason %q", why)
	}

	g.release()
	for _, j := range jobs {
		wait(t, j)
	}
	if ready, _ := s.Ready(); !ready {
		t.Error("Ready() false after the queue cleared")
	}
}

// TestDrainCheckpointsBacklog: a drain whose deadline trips cancels the
// in-flight jobs; every admitted job still completes, with an honest
// "drain" stop reason, and Drain returns.
func TestDrainCheckpointsBacklog(t *testing.T) {
	g := newGate() // never released: only the drain kill can free the jobs
	s := New(Config{Executors: 2, QueueDepth: 8})
	s.beforeRun = func(j *Job) { g.hold(j) }

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Submission{Source: progs.Section21, Seed: int64(i + 1), Runs: 50})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	start := time.Now()
	s.Drain(100 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("drain took %s", elapsed)
	}

	if _, err := s.Submit(Submission{Source: progs.Section21}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while drained: %v, want ErrDraining", err)
	}
	for _, j := range jobs {
		wait(t, j)
		rep := decode(t, firstBytes(j))
		if !rep.Stopped || rep.StopReason != "drain" {
			t.Errorf("%s: stopped=%v reason=%q, want drain checkpoint", j.ID, rep.Stopped, rep.StopReason)
		}
	}
	// Draining twice is safe.
	s.Drain(time.Millisecond)
}

// TestDrainLetsBacklogFinish: when jobs finish inside the deadline the
// drain is clean — full reports, no checkpoint marks.
func TestDrainLetsBacklogFinish(t *testing.T) {
	s := New(Config{Executors: 2})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(Submission{Source: progs.Section21, Seed: int64(i + 1), Runs: 100})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Drain(30 * time.Second)
	for _, j := range jobs {
		rep := decode(t, firstBytes(j))
		if rep.Stopped {
			t.Errorf("%s: checkpointed (%s) despite a roomy drain deadline", j.ID, rep.StopReason)
		}
	}
}

// TestConcurrentSubmissions hammers Submit from many goroutines while
// executors run, under -race in CI: every call must return either an
// admitted job (which then completes) or a clean backpressure error.
func TestConcurrentSubmissions(t *testing.T) {
	s := New(Config{Executors: 4, QueueDepth: 8})
	defer s.Drain(30 * time.Second)

	const n = 32
	var wg sync.WaitGroup
	results := make([]*Job, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A handful of distinct identities so store hits and misses
			// interleave with live runs.
			sub := Submission{Source: progs.Section21, Seed: int64(i%4 + 1), Runs: 60}
			results[i], errs[i] = s.Submit(sub)
		}(i)
	}
	wg.Wait()

	admitted := 0
	for i := 0; i < n; i++ {
		switch {
		case errs[i] == nil:
			admitted++
			wait(t, results[i])
			if rep := decode(t, firstBytes(results[i])); rep.Stopped {
				t.Errorf("job %s degraded: %s", results[i].ID, rep.StopReason)
			}
		case errors.Is(errs[i], ErrQueueFull):
			// Honest shedding under burst load.
		default:
			t.Errorf("submission %d: %v", i, errs[i])
		}
	}
	if admitted == 0 {
		t.Error("no submission was admitted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{MaxRuns: 1000})
	defer s.Drain(time.Second)

	var bad *BadSubmissionError
	if _, err := s.Submit(Submission{}); !errors.As(err, &bad) {
		t.Errorf("empty submission: %v", err)
	}
	if _, err := s.Submit(Submission{Lib: "nope"}); !errors.As(err, &bad) || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown library: %v", err)
	}
	if _, err := s.Submit(Submission{Source: "int f( {"}); !errors.As(err, &bad) {
		t.Errorf("compile failure: %v", err)
	}
	if _, err := s.Submit(Submission{Source: progs.Section21, Runs: 5000}); !errors.As(err, &bad) || !strings.Contains(err.Error(), "cap") {
		t.Errorf("runs over the service cap: %v", err)
	}
}

func TestLibrarySubmission(t *testing.T) {
	s := New(Config{Libraries: map[string]string{"sec21": progs.Section21}})
	defer s.Drain(time.Second)
	j, err := s.Submit(Submission{Lib: "sec21", Runs: 100})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if rep := decode(t, firstBytes(j)); rep.Buggy != 1 {
		t.Errorf("library audit: %+v", rep)
	}
}

// TestHistoryCapEvicts: completed job records beyond the cap disappear
// from lookup — the record tables are bounded like everything else.
func TestHistoryCapEvicts(t *testing.T) {
	s := New(Config{Executors: 1, HistoryCap: 2, StoreCap: -1})
	defer s.Drain(time.Second)
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Submission{Source: progs.Section21, Seed: int64(i + 1), Runs: 50})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		ids = append(ids, j.ID)
	}
	for i, id := range ids {
		_, ok := s.Job(id)
		if want := i >= len(ids)-2; ok != want {
			t.Errorf("job %s retained=%v, want %v", id, ok, want)
		}
	}
	if n := len(s.Jobs()); n != 2 {
		t.Errorf("%d live records, want 2", n)
	}
}

// TestJobEvents: the lifecycle event stream carries the job tags the
// /events consumers key on.
func TestJobEvents(t *testing.T) {
	var mu sync.Mutex
	var got []obs.Event
	sink := obs.SinkFunc(func(ev obs.Event) {
		switch ev.Kind {
		case obs.JobQueued, obs.JobStart, obs.JobEnd, obs.JobRejected:
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		}
	})
	s := New(Config{Executors: 1, QueueDepth: 1, Sink: sink})
	defer s.Drain(time.Second)

	j, err := s.Submit(Submission{Source: progs.Section21, Runs: 100})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	// Identical resubmission: a cached completion still announces itself.
	c, err := s.Submit(Submission{Source: progs.Section21, Runs: 100})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, c)

	mu.Lock()
	defer mu.Unlock()
	kinds := map[obs.Kind]int{}
	for _, ev := range got {
		kinds[ev.Kind]++
		if ev.Kind != obs.JobRejected && ev.Job == "" {
			t.Errorf("%s event missing its job tag", ev.Kind)
		}
	}
	if kinds[obs.JobQueued] != 2 || kinds[obs.JobStart] != 1 || kinds[obs.JobEnd] != 2 {
		t.Errorf("event counts: %v", kinds)
	}
	var cachedEnd bool
	for _, ev := range got {
		if ev.Kind == obs.JobEnd && ev.Job == c.ID && ev.Status == "cached" {
			cachedEnd = true
		}
	}
	if !cachedEnd {
		t.Error("cached completion not announced with status=cached")
	}
}

// TestGauges: the service's /metrics gauges reflect live state.
func TestGauges(t *testing.T) {
	g := newGate()
	s := New(Config{Executors: 1, QueueDepth: 4})
	defer func() { g.release(); s.Drain(time.Second) }()
	s.beforeRun = func(j *Job) { g.hold(j) }

	if _, err := s.Submit(Submission{Source: progs.Section21, Runs: 50}); err != nil {
		t.Fatal(err)
	}
	// Wait for the executor to pick the job up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Gauges()["jobs_running"] == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	gs := s.Gauges()
	if gs["jobs_running"] != 1 {
		t.Errorf("jobs_running = %v, want 1", gs["jobs_running"])
	}
	if gs["jobs_queue_capacity"] != 4 {
		t.Errorf("jobs_queue_capacity = %v, want 4", gs["jobs_queue_capacity"])
	}
	if gs["jobs_draining"] != 0 {
		t.Errorf("jobs_draining = %v, want 0", gs["jobs_draining"])
	}
}

// TestStoreLRUBounds exercises the result store directly: capacity is a
// hard bound and eviction is least-recently-used.
func TestStoreLRUBounds(t *testing.T) {
	st := newStore(2, nil)
	st.put("a", []byte("A"))
	st.put("b", []byte("B"))
	if _, src := st.get("a"); src != cacheSourceMemory { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	st.put("c", []byte("C"))
	if _, src := st.get("b"); src != "" {
		t.Error("b survived past capacity (not LRU eviction)")
	}
	if _, src := st.get("a"); src != cacheSourceMemory {
		t.Error("recently used a was evicted")
	}
	if st.len() != 2 {
		t.Errorf("len = %d, want 2", st.len())
	}
	_, _, evictions, _ := st.stats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}

	off := newStore(-1, nil)
	off.put("a", []byte("A"))
	if _, src := off.get("a"); src != "" || off.len() != 0 {
		t.Error("negative capacity must disable the store")
	}
}

func TestCacheKeyIdentity(t *testing.T) {
	base := cacheKey("src", 1, 100, 1, false, 0)
	same := cacheKey("src", 1, 100, 1, false, 0)
	if base != same {
		t.Error("identical identities hash differently")
	}
	for i, other := range []string{
		cacheKey("src2", 1, 100, 1, false, 0),
		cacheKey("src", 2, 100, 1, false, 0),
		cacheKey("src", 1, 101, 1, false, 0),
		cacheKey("src", 1, 100, 2, false, 0),
		cacheKey("src", 1, 100, 1, true, 0),
		cacheKey("src", 1, 100, 1, false, time.Second),
	} {
		if other == base {
			t.Errorf("variant %d collides with the base identity", i)
		}
	}
}

// TestDeadlineCheckpointsJob: a job that blows its per-job deadline is
// checkpointed, not killed — done state, partial report, "deadline".
func TestDeadlineCheckpointsJob(t *testing.T) {
	g := newGate() // never released: only the deadline frees the job
	s := New(Config{Executors: 1, JobTimeout: 50 * time.Millisecond})
	defer s.Drain(time.Second)
	s.beforeRun = func(j *Job) { g.hold(j) }

	j, err := s.Submit(Submission{Source: progs.Section21, Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	rep := decode(t, firstBytes(j))
	if !rep.Stopped || rep.StopReason != "deadline" {
		t.Errorf("stopped=%v reason=%q, want deadline checkpoint", rep.Stopped, rep.StopReason)
	}
	if j.State() != StateDone {
		t.Errorf("state %q, want done", j.State())
	}
	if _, cached := j.Report(); cached {
		t.Error("deadline-shaped report claims cached")
	}
}

func TestServiceRunsCapMessage(t *testing.T) {
	s := New(Config{MaxRuns: 10})
	defer s.Drain(time.Second)
	_, err := s.Submit(Submission{Source: progs.Section21, Runs: 11})
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("cap %d", 10)) {
		t.Errorf("cap diagnostic: %v", err)
	}
}
