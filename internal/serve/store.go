// The result store: a bounded, content-addressed cache of finished job
// reports.  The key is a digest of everything that determines a job's
// outcome — the exact source text, the seed, and every search option —
// so a hit can be served as the completed report of a new submission
// with no re-execution, and (because reports deliberately contain only
// deterministic fields) the served bytes are identical to what a fresh
// run would have produced.  Capacity is a hard entry cap with LRU
// eviction: a long-running service's memory stays bounded no matter how
// many distinct programs pass through, and evictions are counted, never
// silent.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dart/internal/corpus"
)

// DefaultStoreCap bounds the result store when Config.StoreCap is zero.
const DefaultStoreCap = 256

// cacheKey renders the deterministic identity of a submission: the
// digest of the canonical (source, seed, options) encoding.  Two
// submissions with equal keys are guaranteed to produce byte-identical
// reports on a fresh run, which is what licenses serving one from the
// other's cached result.
func cacheKey(src string, seed int64, runs, depth int, random bool, fnTimeout time.Duration) string {
	h := sha256.New()
	fmt.Fprintf(h, "dart-job-v1\nseed=%d\nruns=%d\ndepth=%d\nrandom=%t\nfn_timeout=%d\nsource=%d\n",
		seed, runs, depth, random, fnTimeout.Nanoseconds(), len(src))
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// store is the bounded LRU map from cache key to report bytes, with an
// optional disk spill (a corpus's reports/ area): every put is also
// persisted, and an in-memory miss consults the spill before giving up
// — so a restarted server still serves byte-identical cached reports
// for submissions completed before the restart.  Spill files carry the
// corpus's version+checksum envelope; a corrupt one reads as a miss and
// the job simply re-executes.
type store struct {
	mu        sync.Mutex
	cap       int
	spill     *corpus.Corpus // nil = memory-only
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	diskHits  uint64
}

type storeEntry struct {
	key    string
	report []byte
}

// newStore returns a store holding at most cap reports in memory,
// spilling to the corpus when one is attached; cap <= 0 disables
// in-memory caching (gets still consult the spill when present).
func newStore(cap int, spill *corpus.Corpus) *store {
	return &store{
		cap:     cap,
		spill:   spill,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Cache-source labels returned by get (and surfaced on job envelopes).
const (
	cacheSourceMemory = "store"
	cacheSourceDisk   = "corpus-disk"
)

// get returns the cached report for key and where it came from:
// cacheSourceMemory (LRU hit), cacheSourceDisk (loaded from the spill
// and promoted back into the LRU), or "" on a miss.
func (s *store) get(key string) ([]byte, string) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		rep := el.Value.(*storeEntry).report
		s.mu.Unlock()
		return rep, cacheSourceMemory
	}
	s.mu.Unlock()
	if s.spill != nil {
		if rep, ok := s.spill.LoadReport(key); ok {
			s.mu.Lock()
			s.diskHits++
			s.insert(key, rep)
			s.mu.Unlock()
			return rep, cacheSourceDisk
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, ""
}

// put caches report under key, evicting the least recently used entry
// when the store is full, and persists it to the spill.  Re-putting an
// existing key refreshes its recency and keeps the first bytes (equal
// by construction: equal keys imply identical reports).
func (s *store) put(key string, report []byte) {
	if s.spill != nil {
		// Spill even when the in-memory cache is off or full: disk is the
		// restart-survival layer, and writes are atomic (tmp+rename).
		_ = s.spill.StoreReport(key, report)
	}
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.insert(key, report)
}

// insert adds a fresh entry under the lock, evicting beyond cap.
func (s *store) insert(key string, report []byte) {
	if s.cap <= 0 {
		return
	}
	if _, ok := s.entries[key]; ok {
		return
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.evictions++
	}
	s.entries[key] = s.lru.PushFront(&storeEntry{key: key, report: report})
}

// len reports the current entry count.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// stats returns the lifetime hit/miss/eviction/disk-hit counters.
func (s *store) stats() (hits, misses, evictions, diskHits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, s.diskHits
}
