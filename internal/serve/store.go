// The result store: a bounded, content-addressed cache of finished job
// reports.  The key is a digest of everything that determines a job's
// outcome — the exact source text, the seed, and every search option —
// so a hit can be served as the completed report of a new submission
// with no re-execution, and (because reports deliberately contain only
// deterministic fields) the served bytes are identical to what a fresh
// run would have produced.  Capacity is a hard entry cap with LRU
// eviction: a long-running service's memory stays bounded no matter how
// many distinct programs pass through, and evictions are counted, never
// silent.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// DefaultStoreCap bounds the result store when Config.StoreCap is zero.
const DefaultStoreCap = 256

// cacheKey renders the deterministic identity of a submission: the
// digest of the canonical (source, seed, options) encoding.  Two
// submissions with equal keys are guaranteed to produce byte-identical
// reports on a fresh run, which is what licenses serving one from the
// other's cached result.
func cacheKey(src string, seed int64, runs, depth int, random bool, fnTimeout time.Duration) string {
	h := sha256.New()
	fmt.Fprintf(h, "dart-job-v1\nseed=%d\nruns=%d\ndepth=%d\nrandom=%t\nfn_timeout=%d\nsource=%d\n",
		seed, runs, depth, random, fnTimeout.Nanoseconds(), len(src))
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// store is the bounded LRU map from cache key to report bytes.
type store struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type storeEntry struct {
	key    string
	report []byte
}

// newStore returns a store holding at most cap reports; cap <= 0
// disables caching entirely (every get misses, every put is dropped).
func newStore(cap int) *store {
	return &store{
		cap:     cap,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// get returns the cached report for key, marking it most recently used.
func (s *store) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*storeEntry).report, true
}

// put caches report under key, evicting the least recently used entry
// when the store is full.  Re-putting an existing key refreshes its
// recency and keeps the first bytes (equal by construction: equal keys
// imply identical reports).
func (s *store) put(key string, report []byte) {
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.evictions++
	}
	s.entries[key] = s.lru.PushFront(&storeEntry{key: key, report: report})
}

// len reports the current entry count.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// stats returns the lifetime hit/miss/eviction counters.
func (s *store) stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}
