// The job HTTP surface, mounted on the ops server's mux:
//
//	POST /jobs            submit a MiniC source body (or ?lib=name for a
//	                      registered library); query params seed, runs,
//	                      depth, random, fn_timeout.  202 + job id on
//	                      admission, 200 + id when served from the result
//	                      store, 400 on bad input, 413 past the body cap,
//	                      429 + Retry-After when the queue is full, 503 +
//	                      Retry-After while draining.
//	GET  /jobs            list live job records (admission order)
//	GET  /jobs/{id}       one job's envelope: state, timing, stop reason,
//	                      cached marker, and — when done — the report
//
// Backpressure is honest and layered: /readyz flips to 503 while the
// queue is saturated (the load balancer stops routing), a submission
// that still arrives gets 429 with Retry-After (the client backs off),
// and every rejection is counted in /metrics (dart_jobs_rejected_total)
// and announced on /events.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dart/internal/ops"
)

// retryAfterSeconds is the Retry-After hint on 429/503 responses: the
// queue turns over in job units, so a short fixed hint beats a guess.
const retryAfterSeconds = "1"

// RegisterOn mounts the job endpoints, the readiness probe, and the
// service gauges on an ops server.  Call before ops.Server.Handler()
// or Start.
func (s *Service) RegisterOn(srv *ops.Server) {
	srv.Attach("/jobs", http.HandlerFunc(s.handleJobs))
	srv.Attach("/jobs/", http.HandlerFunc(s.handleJob))
	srv.SetReady(s.Ready)
	srv.SetGauges(s.Gauges)
}

// handleJobs serves POST /jobs (submit) and GET /jobs (list).
func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// submitResp is the POST /jobs response document.
type submitResp struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// QueueDepth is the backlog length right after this admission.
	QueueDepth int `json:"queue_depth"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body cap is enforced while reading: a client streaming an
	// oversized submission is cut off at MaxBody+1 bytes, 413.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reject("too-large")
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		s.reject("bad-request")
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}

	sub := Submission{Source: string(body), Lib: r.URL.Query().Get("lib")}
	q := r.URL.Query()
	bad := func(param string, err error) {
		s.reject("bad-request")
		http.Error(w, fmt.Sprintf("bad %s: %v", param, err), http.StatusBadRequest)
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			bad("seed", err)
			return
		}
		sub.Seed = n
	}
	if v := q.Get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			bad("runs", err)
			return
		}
		sub.Runs = n
	}
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			bad("depth", err)
			return
		}
		sub.Depth = n
	}
	if v := q.Get("random"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			bad("random", err)
			return
		}
		sub.Random = b
	}
	if v := q.Get("fn_timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			bad("fn_timeout", fmt.Errorf("want a positive Go duration: %q", v))
			return
		}
		sub.FnTimeout = d
	}

	j, err := s.Submit(sub)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "job queue full; retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "service draining; retry against another instance", http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	resp := submitResp{ID: j.ID, State: string(j.State()), Cached: j.cachedNow(), QueueDepth: s.queueDepth()}
	code := http.StatusAccepted
	if resp.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// jobEnvelope is the GET /jobs/{id} document: the job's lifecycle
// record around the (deterministic) report.  Timing lives here, never
// inside the report — the report must stay byte-identical across
// identical submissions.
type jobEnvelope struct {
	ID             string          `json:"id"`
	State          string          `json:"state"`
	Cached         bool            `json:"cached"`
	StopReason     string          `json:"stop_reason,omitempty"`
	Error          string          `json:"error,omitempty"`
	Retries        int             `json:"retries,omitempty"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Report         json.RawMessage `json:"report,omitempty"`
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	j, ok := s.Job(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q (completed jobs are retained up to the history cap)", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.envelope())
}

// envelope snapshots the job under its lock.
func (j *Job) envelope() jobEnvelope {
	j.mu.Lock()
	defer j.mu.Unlock()
	env := jobEnvelope{
		ID:         j.ID,
		State:      string(j.state),
		Cached:     j.cached,
		StopReason: j.stopReason,
		Error:      j.errMsg,
		Retries:    j.retries,
		Report:     json.RawMessage(j.report),
	}
	switch j.state {
	case StateDone:
		env.ElapsedSeconds = j.finished.Sub(j.created).Seconds()
	default:
		env.ElapsedSeconds = time.Since(j.created).Seconds()
	}
	return env
}

// listResp is the GET /jobs document.
type listResp struct {
	Jobs       []jobSummary `json:"jobs"`
	QueueDepth int          `json:"queue_depth"`
	QueueCap   int          `json:"queue_capacity"`
}

type jobSummary struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

func (s *Service) handleList(w http.ResponseWriter) {
	resp := listResp{Jobs: []jobSummary{}, QueueDepth: s.queueDepth(), QueueCap: s.cfg.QueueDepth}
	for _, j := range s.Jobs() {
		j.mu.Lock()
		resp.Jobs = append(resp.Jobs, jobSummary{ID: j.ID, State: string(j.state), Cached: j.cached})
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// cachedNow reads the cached marker under the job lock.
func (j *Job) cachedNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// queueDepth is the live backlog length.
func (s *Service) queueDepth() int { return len(s.queue) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
