// The job HTTP surface, mounted on the ops server's mux:
//
//	POST /jobs            submit a MiniC source body (or ?lib=name for a
//	                      registered library); query params seed, runs,
//	                      depth, random, fn_timeout.  202 + job id on
//	                      admission, 200 + id when served from the result
//	                      store, 400 on bad input, 413 past the body cap,
//	                      429 + Retry-After when the queue is full, 503 +
//	                      Retry-After while draining.
//	GET  /jobs            list live job records (admission order)
//	GET  /jobs/{id}       one job's envelope: state, timing, stop reason,
//	                      cached marker, and — when done — the report, the
//	                      job's cost profile, and its resolved coverage
//	                      explanation.  ?wait=SECONDS long-polls
//	                      until completion (or the timeout, returning the
//	                      current envelope either way); with
//	                      Accept: text/event-stream the handler streams
//	                      SSE instead: an immediate "state" event, then a
//	                      "done" event carrying the completed envelope,
//	                      with a keep-alive comment frame every
//	                      Config.Heartbeat of idleness in between.
//	                      Blocking waiters are bounded by Config.MaxWaiters;
//	                      past the cap a wait request gets 429 + Retry-After.
//
// Backpressure is honest and layered: /readyz flips to 503 while the
// queue is saturated (the load balancer stops routing), a submission
// that still arrives gets 429 with Retry-After (the client backs off),
// and every rejection is counted in /metrics (dart_jobs_rejected_total)
// and announced on /events.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dart/internal/obs"
	"dart/internal/ops"
)

// retryAfterSeconds is the Retry-After hint on 429/503 responses: the
// queue turns over in job units, so a short fixed hint beats a guess.
const retryAfterSeconds = "1"

// RegisterOn mounts the job endpoints, the readiness probe, and the
// service gauges on an ops server.  Call before ops.Server.Handler()
// or Start.
func (s *Service) RegisterOn(srv *ops.Server) {
	srv.Attach("/jobs", http.HandlerFunc(s.handleJobs))
	srv.Attach("/jobs/", http.HandlerFunc(s.handleJob))
	srv.SetReady(s.Ready)
	srv.SetGauges(s.Gauges)
	s.profileSink = srv.ReportProfile
}

// handleJobs serves POST /jobs (submit) and GET /jobs (list).
func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// submitResp is the POST /jobs response document.
type submitResp struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// QueueDepth is the backlog length right after this admission.
	QueueDepth int `json:"queue_depth"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body cap is enforced while reading: a client streaming an
	// oversized submission is cut off at MaxBody+1 bytes, 413.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reject("too-large")
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		s.reject("bad-request")
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}

	sub := Submission{Source: string(body), Lib: r.URL.Query().Get("lib")}
	q := r.URL.Query()
	bad := func(param string, err error) {
		s.reject("bad-request")
		http.Error(w, fmt.Sprintf("bad %s: %v", param, err), http.StatusBadRequest)
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			bad("seed", err)
			return
		}
		sub.Seed = n
	}
	if v := q.Get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			bad("runs", err)
			return
		}
		sub.Runs = n
	}
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			bad("depth", err)
			return
		}
		sub.Depth = n
	}
	if v := q.Get("random"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			bad("random", err)
			return
		}
		sub.Random = b
	}
	if v := q.Get("fn_timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			bad("fn_timeout", fmt.Errorf("want a positive Go duration: %q", v))
			return
		}
		sub.FnTimeout = d
	}

	j, err := s.Submit(sub)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "job queue full; retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "service draining; retry against another instance", http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	resp := submitResp{ID: j.ID, State: string(j.State()), Cached: j.cachedNow(), QueueDepth: s.queueDepth()}
	code := http.StatusAccepted
	if resp.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// jobEnvelope is the GET /jobs/{id} document: the job's lifecycle
// record around the (deterministic) report.  Timing lives here, never
// inside the report — the report must stay byte-identical across
// identical submissions.
type jobEnvelope struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// CacheSource says where a cached report came from: "store" (the
	// in-memory LRU) or "corpus-disk" (the spill, surviving a restart).
	CacheSource string `json:"cache_source,omitempty"`
	// CorpusHits counts the functions this job answered from the
	// incremental corpus (distilled-suite replay instead of search).
	// Envelope-only, like all cache provenance: the report itself must
	// stay byte-identical whether or not a corpus was attached.
	CorpusHits     int             `json:"corpus_hits,omitempty"`
	StopReason     string          `json:"stop_reason,omitempty"`
	Error          string          `json:"error,omitempty"`
	Retries        int             `json:"retries,omitempty"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Report         json.RawMessage `json:"report,omitempty"`
	// Profile is the job's search-cost profile (phase wall breakdown,
	// per-site solver attribution, queue wait).  Envelope-only: it
	// carries wall-clock, so it can never live inside the cacheable
	// report, and cache-served jobs have none.
	Profile *obs.ProfileSnapshot `json:"profile,omitempty"`
	// Explain is the job's resolved coverage explanation: every branch
	// direction of the submitted program covered or carrying exactly one
	// "why not" reason.  Envelope-only like Profile; cache-served jobs
	// have none.
	Explain *obs.ExplainReport `json:"explain,omitempty"`
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	j, ok := s.Job(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q (completed jobs are retained up to the history cap)", id), http.StatusNotFound)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamJob(w, r, j)
		return
	}
	if v := r.URL.Query().Get("wait"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 {
			http.Error(w, fmt.Sprintf("bad wait: want non-negative seconds, got %q", v), http.StatusBadRequest)
			return
		}
		if !s.waitJob(w, r, j, secs) {
			return
		}
	}
	writeJSON(w, http.StatusOK, j.envelope())
}

// waitJob blocks until the job completes, the wait window expires, or
// the client goes away — the long-poll half of job-completion
// streaming.  It reports whether a response should still be written
// (false only when a 429 was already sent or the client disconnected).
func (s *Service) waitJob(w http.ResponseWriter, r *http.Request, j *Job, secs float64) bool {
	select {
	case <-j.Done():
		return true // already complete: no waiter slot needed
	default:
	}
	if !s.acquireWaiter() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "too many completion waiters; poll without wait or retry later", http.StatusTooManyRequests)
		return false
	}
	defer s.releaseWaiter()
	timer := time.NewTimer(time.Duration(secs * float64(time.Second)))
	defer timer.Stop()
	select {
	case <-j.Done():
	case <-timer.C:
		// Timeout is not an error: the current (still-running) envelope
		// is the honest long-poll answer.
	case <-r.Context().Done():
		return false
	}
	return true
}

// streamJob serves GET /jobs/{id} as a Server-Sent-Events stream: an
// immediate "state" event with the current envelope, then a terminal
// "done" event with the completed one.  Like long-polls, open streams
// occupy a bounded waiter slot.
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	done := false
	select {
	case <-j.Done():
		done = true
	default:
		if !s.acquireWaiter() {
			w.Header().Set("Retry-After", retryAfterSeconds)
			http.Error(w, "too many completion waiters; poll without wait or retry later", http.StatusTooManyRequests)
			return
		}
		defer s.releaseWaiter()
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "state", j.envelope())
	flusher.Flush()
	if !done {
		// While the stream waits on completion, a keep-alive comment
		// frame goes out after every Heartbeat of idleness so proxies
		// and slow consumers do not reap a healthy stream.
		var beat <-chan time.Time
		if s.cfg.Heartbeat > 0 {
			t := time.NewTicker(s.cfg.Heartbeat)
			defer t.Stop()
			beat = t.C
		}
	wait:
		for {
			select {
			case <-j.Done():
				break wait
			case <-beat:
				fmt.Fprint(w, ": keep-alive\n\n")
				flusher.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}
	writeSSE(w, "done", j.envelope())
	flusher.Flush()
}

// writeSSE emits one SSE event with a JSON data payload.
func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// envelope snapshots the job under its lock.
func (j *Job) envelope() jobEnvelope {
	j.mu.Lock()
	defer j.mu.Unlock()
	env := jobEnvelope{
		ID:          j.ID,
		State:       string(j.state),
		Cached:      j.cached,
		CacheSource: j.cacheSrc,
		CorpusHits:  j.corpusHits,
		StopReason:  j.stopReason,
		Error:      j.errMsg,
		Retries:    j.retries,
		Report:     json.RawMessage(j.report),
		Profile:    j.profile,
		Explain:    j.explain,
	}
	switch j.state {
	case StateDone:
		env.ElapsedSeconds = j.finished.Sub(j.created).Seconds()
	default:
		env.ElapsedSeconds = time.Since(j.created).Seconds()
	}
	return env
}

// listResp is the GET /jobs document.
type listResp struct {
	Jobs       []jobSummary `json:"jobs"`
	QueueDepth int          `json:"queue_depth"`
	QueueCap   int          `json:"queue_capacity"`
}

type jobSummary struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

func (s *Service) handleList(w http.ResponseWriter) {
	resp := listResp{Jobs: []jobSummary{}, QueueDepth: s.queueDepth(), QueueCap: s.cfg.QueueDepth}
	for _, j := range s.Jobs() {
		j.mu.Lock()
		resp.Jobs = append(resp.Jobs, jobSummary{ID: j.ID, State: string(j.state), Cached: j.cached})
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// cachedNow reads the cached marker under the job lock.
func (j *Job) cachedNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// queueDepth is the live backlog length.
func (s *Service) queueDepth() int { return len(s.queue) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
