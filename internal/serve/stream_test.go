package serve

// Job-completion streaming tests: the GET /jobs/{id}?wait long-poll,
// the Accept: text/event-stream SSE variant, the bounded-waiter 429,
// and the per-job cost profile on the envelope (and only there — the
// cacheable report must stay wall-clock free).

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dart/internal/obs"
	"dart/internal/progs"
)

// envDoc is the subset of the job envelope these tests read.
type envDoc struct {
	ID      string               `json:"id"`
	State   string               `json:"state"`
	Cached  bool                 `json:"cached"`
	Report  map[string]any       `json:"report"`
	Profile *obs.ProfileSnapshot `json:"profile"`
}

func decodeEnv(t *testing.T, body string) envDoc {
	t.Helper()
	var env envDoc
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("envelope: %v\n%s", err, body)
	}
	return env
}

func submitOne(t *testing.T, url string) string {
	t.Helper()
	resp, body := post(t, url+"/jobs?runs=100", progs.Section21)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	return sub.ID
}

// hasPhase reports whether the profile carries the named span phase.
func hasPhase(p *obs.ProfileSnapshot, phase string) bool {
	if p == nil {
		return false
	}
	for _, ph := range p.Phases {
		if ph.Phase == phase {
			return true
		}
	}
	return false
}

// TestJobWaitLongPoll: ?wait=SECONDS blocks until completion and then
// returns the done envelope — no polling loop needed — carrying the
// job's cost profile (including the synthesized queue-wait phase).
func TestJobWaitLongPoll(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1})
	svc.beforeRun = func(j *Job) { g.hold(j) }
	defer g.release()

	id := submitOne(t, ts.URL)
	type result struct {
		code int
		body string
	}
	ch := make(chan result, 1)
	go func() {
		resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=30")
		ch <- result{resp.StatusCode, body}
	}()
	select {
	case r := <-ch:
		t.Fatalf("long-poll returned before completion: %d\n%s", r.code, r.body)
	case <-time.After(100 * time.Millisecond):
	}
	g.release()
	select {
	case r := <-ch:
		if r.code != http.StatusOK {
			t.Fatalf("long-poll: %d\n%s", r.code, r.body)
		}
		env := decodeEnv(t, r.body)
		if env.State != "done" {
			t.Fatalf("long-poll state %q, want done:\n%s", env.State, r.body)
		}
		if !hasPhase(env.Profile, obs.SpanJobQueueWait) {
			t.Errorf("done envelope profile missing %s phase: %+v", obs.SpanJobQueueWait, env.Profile)
		}
		if !hasPhase(env.Profile, obs.SpanExec) {
			t.Errorf("done envelope profile missing %s phase: %+v", obs.SpanExec, env.Profile)
		}
		if env.Profile == nil || len(env.Profile.Sites) == 0 {
			t.Errorf("done envelope profile has no site attribution: %+v", env.Profile)
		}
		// The profile is envelope-only: the deterministic (cacheable)
		// report must not grow a wall-clock field.
		if _, ok := env.Report["profile"]; ok {
			t.Errorf("cacheable report contains a profile field:\n%s", r.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("long-poll never returned after release")
	}
}

// TestJobWaitTimeout: an expired wait window is not an error — the
// handler answers 200 with the current (still-running) envelope.
func TestJobWaitTimeout(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1})
	svc.beforeRun = func(j *Job) { g.hold(j) }
	defer g.release()

	id := submitOne(t, ts.URL)
	resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait timeout: %d\n%s", resp.StatusCode, body)
	}
	env := decodeEnv(t, body)
	if env.State == string(StateDone) {
		t.Fatalf("job done while the gate holds it:\n%s", body)
	}
	if env.Profile != nil {
		t.Errorf("running envelope has a profile:\n%s", body)
	}
	if resp, _ := get(t, ts.URL+"/jobs/"+id+"?wait=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait value: %d, want 400", resp.StatusCode)
	}
}

// TestJobWaitersBounded429: MaxWaiters caps concurrently blocked
// long-polls/SSE streams; past it the handler degrades to 429 +
// Retry-After rather than pinning goroutines for a slow crowd.
func TestJobWaitersBounded429(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1, MaxWaiters: 1})
	svc.beforeRun = func(j *Job) { g.hold(j) }
	defer g.release()

	id := submitOne(t, ts.URL)
	release := make(chan struct{})
	firstIn := make(chan struct{})
	go func() {
		// Occupy the single waiter slot with a genuine blocked long-poll.
		close(firstIn)
		get(t, ts.URL+"/jobs/"+id+"?wait=30")
		close(release)
	}()
	<-firstIn
	// Wait for the first poller to actually take the slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.waiters.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.waiters.Load() != 1 {
		t.Fatalf("waiter slot not taken: %d", svc.waiters.Load())
	}

	resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=30")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second waiter: %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// SSE counts against the same pool.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id, nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("SSE past waiter cap: %d, want 429", sresp.StatusCode)
	}

	// A plain (non-waiting) poll is always served.
	if resp, _ := get(t, ts.URL+"/jobs/"+id); resp.StatusCode != http.StatusOK {
		t.Fatalf("plain poll under waiter pressure: %d", resp.StatusCode)
	}
	g.release()
	<-release
	// A completed job needs no slot: wait degrades to an immediate 200.
	if resp, _ := get(t, ts.URL+"/jobs/"+id+"?wait=30"); resp.StatusCode != http.StatusOK {
		t.Errorf("wait on done job: %d", resp.StatusCode)
	}
}

// TestJobSSEStream: Accept: text/event-stream turns GET /jobs/{id}
// into an SSE stream — an immediate "state" event, then a terminal
// "done" event with the completed envelope.
func TestJobSSEStream(t *testing.T) {
	g := newGate()
	svc, ts := newHTTPService(t, Config{Executors: 1})
	svc.beforeRun = func(j *Job) { g.hold(j) }
	defer g.release()

	id := submitOne(t, ts.URL)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	type sse struct {
		event string
		data  string
	}
	events := make(chan sse, 4)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		cur := sse{}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.event != "":
				events <- cur
				cur = sse{}
			}
		}
	}()

	readEvent := func(what string) sse {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("SSE stream ended before %s event", what)
			}
			return ev
		case <-time.After(30 * time.Second):
			t.Fatalf("no %s event within 30s", what)
		}
		panic("unreachable")
	}

	first := readEvent("state")
	if first.event != "state" {
		t.Fatalf("first SSE event %q, want state", first.event)
	}
	env := decodeEnv(t, first.data)
	if env.ID != id || env.State == string(StateDone) {
		t.Fatalf("state event: %+v", env)
	}

	g.release()
	done := readEvent("done")
	if done.event != "done" {
		t.Fatalf("second SSE event %q, want done", done.event)
	}
	env = decodeEnv(t, done.data)
	if env.State != "done" {
		t.Fatalf("done event state %q:\n%s", env.State, done.data)
	}
	if !hasPhase(env.Profile, obs.SpanJobQueueWait) {
		t.Errorf("SSE done envelope missing %s phase: %+v", obs.SpanJobQueueWait, env.Profile)
	}
}

// TestCachedJobHasNoProfile: a store-served job is born done without
// ever executing, so its envelope carries no profile — timing data is
// per-execution, never per-report.
func TestCachedJobHasNoProfile(t *testing.T) {
	_, ts := newHTTPService(t, Config{})

	id := submitOne(t, ts.URL)
	resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=30")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: %d\n%s", resp.StatusCode, body)
	}
	if env := decodeEnv(t, body); env.State != "done" || env.Profile == nil {
		t.Fatalf("fresh job envelope: state=%q profile=%v", env.State, env.Profile)
	}

	// Identical resubmission: served from the store, no profile.
	resp, body = post(t, ts.URL+"/jobs?runs=100", progs.Section21)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached POST: %d\n%s", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil || !sub.Cached {
		t.Fatalf("cached submit: %v\n%s", err, body)
	}
	_, body = get(t, ts.URL+"/jobs/"+sub.ID)
	if env := decodeEnv(t, body); !env.Cached || env.Profile != nil {
		t.Fatalf("cached envelope: cached=%v profile=%+v", env.Cached, env.Profile)
	}
}

// TestJobProfileFeedsServerProfile: the job layer pushes every
// completed job's cost profile into the ops server, so GET /profile
// aggregates across submissions instead of staying empty in service
// mode (the per-job envelope is not the only surface).
func TestJobProfileFeedsServerProfile(t *testing.T) {
	_, ts := newHTTPService(t, Config{Executors: 1})

	id := submitOne(t, ts.URL)
	resp, body := get(t, ts.URL+"/jobs/"+id+"?wait=30")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: %d\n%s", resp.StatusCode, body)
	}
	if env := decodeEnv(t, body); env.State != "done" {
		t.Fatalf("job not done: %+v", env)
	}

	_, pbody := get(t, ts.URL+"/profile")
	var doc struct {
		Phases []obs.PhaseProfile `json:"phases"`
		Sites  []obs.SiteProfile  `json:"sites"`
	}
	if err := json.Unmarshal([]byte(pbody), &doc); err != nil {
		t.Fatalf("/profile: %v\n%s", err, pbody)
	}
	agg := &obs.ProfileSnapshot{Phases: doc.Phases, Sites: doc.Sites}
	for _, phase := range []string{obs.SpanExec, obs.SpanSolve, obs.SpanJobQueueWait} {
		if !hasPhase(agg, phase) {
			t.Errorf("server-wide /profile missing %q after a served job:\n%s", phase, pbody)
		}
	}
	if len(doc.Sites) == 0 {
		t.Errorf("server-wide /profile has no site attribution:\n%s", pbody)
	}
}
