package machine

import (
	"strings"
	"testing"

	"dart/internal/ir"
	"dart/internal/parser"
	"dart/internal/rng"
	"dart/internal/sema"
	"dart/internal/symbolic"
	"dart/internal/types"
)

// fixedSource supplies deterministic inputs from a script, tracking vars.
type fixedSource struct {
	scalars  map[string]int64
	pointers map[string]bool
	rand     *rng.R
	varByKey map[string]symbolic.Var
	kinds    map[symbolic.Var]symbolic.VarKind
}

func newFixedSource() *fixedSource {
	return &fixedSource{
		scalars:  map[string]int64{},
		pointers: map[string]bool{},
		rand:     rng.New(99),
		varByKey: map[string]symbolic.Var{},
		kinds:    map[symbolic.Var]symbolic.VarKind{},
	}
}

func (s *fixedSource) ScalarInput(key string, b *types.Basic) int64 {
	if v, ok := s.scalars[key]; ok {
		return v
	}
	return types.Truncate(b, s.rand.Bits(b.Bits()))
}

func (s *fixedSource) PointerInput(key string) bool {
	if v, ok := s.pointers[key]; ok {
		return v
	}
	return s.rand.Coin()
}

func (s *fixedSource) VarOf(key string, kind symbolic.VarKind, _ *types.Basic) (symbolic.Var, bool) {
	if v, ok := s.varByKey[key]; ok {
		return v, true
	}
	v := symbolic.Var(len(s.varByKey))
	s.varByKey[key] = v
	s.kinds[v] = kind
	return v, true
}

func (s *fixedSource) IsPointerVar(v symbolic.Var) bool {
	return s.kinds[v] == symbolic.PointerVar
}

func compile(t *testing.T, src string) *ir.Prog {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sem, err := sema.Check(f, StdLibSigs())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Compile(sem)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// callInt compiles src, runs fn with the given int arguments, and
// returns the result value (failing the test on abnormal termination).
func callInt(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	v, rerr := tryCallInt(t, src, fn, args...)
	if rerr != nil {
		t.Fatalf("%s%v: %v", fn, args, rerr)
	}
	return v
}

func tryCallInt(t *testing.T, src, fn string, args ...int64) (int64, *RunError) {
	t.Helper()
	prog := compile(t, src)
	m, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls()})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Value{V: a}
	}
	ret, rerr := m.RunCall(fn, vals)
	return ret.V, rerr
}

func TestArithmetic(t *testing.T) {
	src := `
int calc(int a, int b) {
    return (a + b) * 2 - a / 2 + a % 3;
}
`
	if got := callInt(t, src, "calc", 7, 5); got != (7+5)*2-7/2+7%3 {
		t.Errorf("calc = %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
`
	if got := callInt(t, src, "collatz_steps", 6); got != 8 {
		t.Errorf("collatz_steps(6) = %d, want 8", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
`
	if got := callInt(t, src, "fib", 10); got != 55 {
		t.Errorf("fib(10) = %d", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
`
	if got := callInt(t, src, "isEven", 10); got != 1 {
		t.Errorf("isEven(10) = %d", got)
	}
	if got := callInt(t, src, "isOdd", 7); got != 1 {
		t.Errorf("isOdd(7) = %d", got)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	src := `
int counter = 100;
int bump(int by) { counter += by; return counter; }
`
	prog := compile(t, src)
	m, err := New(Config{Prog: prog, Inputs: newFixedSource()})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.RunCall("bump", []Value{{V: 1}}); v.V != 101 {
		t.Errorf("first bump = %d", v.V)
	}
	if v, _ := m.RunCall("bump", []Value{{V: 2}}); v.V != 103 {
		t.Errorf("second bump = %d", v.V)
	}
}

func TestHeapAndStructs(t *testing.T) {
	src := `
struct node { int v; struct node *next; };
int sumlist(int a, int b) {
    struct node *first = (struct node *)malloc(sizeof(struct node));
    struct node *second = (struct node *)malloc(sizeof(struct node));
    first->v = a;
    first->next = second;
    second->v = b;
    second->next = NULL;
    int total = 0;
    struct node *p = first;
    while (p != NULL) {
        total += p->v;
        p = p->next;
    }
    free(first);
    free(second);
    return total;
}
`
	if got := callInt(t, src, "sumlist", 4, 38); got != 42 {
		t.Errorf("sumlist = %d", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
int table[5];
int fill_and_sum(int n) {
    int i;
    for (i = 0; i < 5; i++) table[i] = i * n;
    int s = 0;
    for (i = 0; i < 5; i++) s += table[i];
    return s;
}
`
	if got := callInt(t, src, "fill_and_sum", 2); got != 2*(0+1+2+3+4) {
		t.Errorf("fill_and_sum = %d", got)
	}
}

func TestPointerCastAliasing(t *testing.T) {
	// The Sec. 2.5 pattern at machine level: a char* alias writes a
	// struct field.
	src := `
struct foo { int i; char c; };
int poke() {
    struct foo *a = (struct foo *)malloc(sizeof(struct foo));
    a->c = 0;
    *((char *)a + sizeof(int)) = 42;
    return a->c;
}
`
	if got := callInt(t, src, "poke"); got != 42 {
		t.Errorf("aliased write lost: %d", got)
	}
}

func TestCharTruncation(t *testing.T) {
	src := `
int narrow(int v) {
    char c = v;
    return c;
}
`
	if got := callInt(t, src, "narrow", 300); got != 44 {
		t.Errorf("narrow(300) = %d, want 44", got)
	}
	if got := callInt(t, src, "narrow", -1); got != -1 {
		t.Errorf("narrow(-1) = %d, want -1", got)
	}
}

func TestIntWraparound(t *testing.T) {
	src := `int inc(int v) { return v + 1; }`
	if got := callInt(t, src, "inc", 2147483647); got != -2147483648 {
		t.Errorf("INT_MAX + 1 = %d, want wraparound", got)
	}
}

func TestCrashes(t *testing.T) {
	cases := []struct {
		name, src, fn  string
		args           []int64
		expectOutcome  Outcome
		expectContains string
	}{
		{
			name: "null deref",
			src:  `int f() { int *p = NULL; return *p; }`, fn: "f",
			expectOutcome: Crashed, expectContains: "NULL pointer",
		},
		{
			name: "div by zero",
			src:  `int f(int a) { return 10 / a; }`, fn: "f", args: []int64{0},
			expectOutcome: Crashed, expectContains: "division by zero",
		},
		{
			name: "mod by zero",
			src:  `int f(int a) { return 10 % a; }`, fn: "f", args: []int64{0},
			expectOutcome: Crashed, expectContains: "division by zero",
		},
		{
			name: "heap overflow",
			src:  `int f() { char *p = malloc(2); return p[5]; }`, fn: "f",
			expectOutcome: Crashed, expectContains: "invalid read",
		},
		{
			name: "use after free",
			src:  `int f() { char *p = malloc(1); free(p); return *p; }`, fn: "f",
			expectOutcome: Crashed, expectContains: "invalid read",
		},
		{
			name: "double free",
			src:  `int f() { char *p = malloc(1); free(p); free(p); return 0; }`, fn: "f",
			expectOutcome: Crashed, expectContains: "invalid free",
		},
		{
			name: "negative malloc",
			src:  `int f(int n) { char *p = malloc(n); return 0; }`, fn: "f", args: []int64{-5},
			expectOutcome: Crashed, expectContains: "negative",
		},
		{
			name: "infinite recursion",
			src:  `int f(int n) { return f(n + 1); }`, fn: "f", args: []int64{0},
			expectOutcome: Crashed, expectContains: "stack overflow",
		},
		{
			name: "abort",
			src:  `int f() { abort(); return 0; }`, fn: "f",
			expectOutcome: Aborted, expectContains: "abort",
		},
		{
			name: "assert",
			src:  `int f(int x) { assert(x > 0, "positive"); return x; }`, fn: "f", args: []int64{-1},
			expectOutcome: Aborted, expectContains: "positive",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, rerr := tryCallInt(t, c.src, c.fn, c.args...)
			if rerr == nil {
				t.Fatal("expected abnormal termination")
			}
			if rerr.Outcome != c.expectOutcome {
				t.Errorf("outcome %v, want %v (%v)", rerr.Outcome, c.expectOutcome, rerr)
			}
			if !strings.Contains(rerr.Msg, c.expectContains) {
				t.Errorf("message %q lacks %q", rerr.Msg, c.expectContains)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	prog := compile(t, `int spin() { while (1) { } return 0; }`)
	m, err := New(Config{Prog: prog, Inputs: newFixedSource(), MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := m.RunCall("spin", nil)
	if rerr == nil || rerr.Outcome != StepLimit {
		t.Fatalf("expected step-limit, got %v", rerr)
	}
}

func TestHaltOutcome(t *testing.T) {
	prog := compile(t, `int f() { halt(); return 1; }`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	_, rerr := m.RunCall("f", nil)
	if rerr == nil || rerr.Outcome != HaltOK {
		t.Fatalf("expected halt, got %v", rerr)
	}
}

func TestBranchRecords(t *testing.T) {
	prog := compile(t, `
int f(int x) {
    if (x > 5) return 1;
    if (x == 3) return 2;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	xVar := symbolic.Var(0)
	_, rerr := m.RunCall("f", []Value{{V: 3, Sym: symbolic.NewVar(xVar)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(m.Branches) != 2 {
		t.Fatalf("branches: %d", len(m.Branches))
	}
	b0 := m.Branches[0]
	if b0.Taken || !b0.HasPred {
		t.Errorf("first branch: %+v", b0)
	}
	// x > 5 not taken  ⇒  constraint x - 5 <= 0.
	if b0.Pred.Rel != symbolic.LE || b0.Pred.L.Coeff(xVar) != 1 || b0.Pred.L.Const != -5 {
		t.Errorf("first predicate: %v", b0.Pred)
	}
	b1 := m.Branches[1]
	if !b1.Taken || b1.Pred.Rel != symbolic.EQ {
		t.Errorf("second branch: %+v taken=%v", b1.Pred, b1.Taken)
	}
}

func TestInterproceduralSymbolic(t *testing.T) {
	// The paper's f(x) = 2*x: the symbolic expression must flow through
	// the call and produce the constraint 2x - (x + 10) == 0.
	prog := compile(t, `
int f(int x) { return 2 * x; }
int h(int x) {
    if (f(x) == x + 10) return 1;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	xVar := symbolic.Var(0)
	_, rerr := m.RunCall("h", []Value{{V: 7, Sym: symbolic.NewVar(xVar)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(m.Branches) != 1 || !m.Branches[0].HasPred {
		t.Fatalf("branches: %+v", m.Branches)
	}
	p := m.Branches[0].Pred
	// Not taken: 2x - x - 10 != 0, i.e. x - 10 != 0.
	if p.Rel != symbolic.NE || p.L.Coeff(xVar) != 1 || p.L.Const != -10 {
		t.Errorf("predicate: %v", p)
	}
}

func TestNonlinearFallbackFlags(t *testing.T) {
	prog := compile(t, `
int f(int x) {
    if (x * x > 4) return 1;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	_, rerr := m.RunCall("f", []Value{{V: 3, Sym: symbolic.NewVar(0)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if m.AllLinear() {
		t.Error("all_linear should be cleared by x*x")
	}
	if m.Branches[0].HasPred {
		t.Error("non-linear branch should have no predicate")
	}
}

func TestInputDependentDerefFlag(t *testing.T) {
	prog := compile(t, `
int table[4];
int f(int i) {
    if (table[i] == 7) return 1;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	_, rerr := m.RunCall("f", []Value{{V: 2, Sym: symbolic.NewVar(0)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if m.AllLocsDefinite() {
		t.Error("all_locs_definite should be cleared by an input-indexed load")
	}
}

func TestLibraryBlackBoxFlag(t *testing.T) {
	prog := compile(t, `
int f(int x) {
    if (mix(x, 1) > 0) return 1;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls()})
	_, rerr := m.RunCall("f", []Value{{V: 3, Sym: symbolic.NewVar(0)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if m.AllLinear() {
		t.Error("library call on symbolic input should clear all_linear")
	}
}

func TestShlByConstantStaysLinear(t *testing.T) {
	prog := compile(t, `
int f(int x) {
    if ((x << 2) == 20) return 1;
    return 0;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	_, rerr := m.RunCall("f", []Value{{V: 5, Sym: symbolic.NewVar(0)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !m.AllLinear() {
		t.Error("x << 2 is scaling by 4 and should stay linear")
	}
	p := m.Branches[0].Pred
	if !m.Branches[0].HasPred || p.L.Coeff(0) != 4 {
		t.Errorf("predicate: %v", p)
	}
}

func TestRandomInitStructTree(t *testing.T) {
	prog := compile(t, `
struct inner { int a; char b; };
struct outer { int x; struct inner in; int arr[2]; struct inner *p; };
int f(struct outer *o) { return 0; }
`)
	src := newFixedSource()
	src.pointers["top"] = true
	src.pointers["top.*.p"] = true
	src.scalars["top.*.x"] = 11
	src.scalars["top.*.in.a"] = 22
	src.scalars["top.*.arr[1]"] = 33
	src.scalars["top.*.p.*.a"] = 44

	m, err := New(Config{Prog: prog, Inputs: src})
	if err != nil {
		t.Fatal(err)
	}
	cell, _ := m.Mem().Alloc(1)
	if err := m.RandomInit(cell, mustPtrType(t, prog, "outer"), "top"); err != nil {
		t.Fatal(err)
	}
	base, _ := m.Mem().Load(cell)
	if base == 0 {
		t.Fatal("pointer decision ignored")
	}
	if v, _ := m.Mem().Load(base + 0); v != 11 {
		t.Errorf("x = %d", v)
	}
	if v, _ := m.Mem().Load(base + 1); v != 22 {
		t.Errorf("in.a = %d", v)
	}
	if v, _ := m.Mem().Load(base + 4); v != 33 {
		t.Errorf("arr[1] = %d", v)
	}
	p, _ := m.Mem().Load(base + 5)
	if p == 0 {
		t.Fatal("nested pointer decision ignored")
	}
	if v, _ := m.Mem().Load(p); v != 44 {
		t.Errorf("p->a = %d", v)
	}
	// Every initialized scalar cell must carry its symbolic variable.
	if _, ok := m.SymAt(base + 0); !ok {
		t.Error("no symbolic shadow for struct field input")
	}
}

func mustPtrType(t *testing.T, prog *ir.Prog, name string) types.Type {
	t.Helper()
	st, ok := prog.Structs[name]
	if !ok {
		t.Fatalf("no struct %s", name)
	}
	return &types.Pointer{Elem: st}
}

func TestExternalFunctionFreshInputs(t *testing.T) {
	prog := compile(t, `
extern int sensor();
int f() { return sensor() + sensor(); }
`)
	src := newFixedSource()
	src.scalars["ext:sensor#0"] = 10
	src.scalars["ext:sensor#1"] = 32
	m, _ := New(Config{Prog: prog, Inputs: src})
	v, rerr := m.RunCall("f", nil)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if v.V != 42 {
		t.Errorf("sum of external inputs = %d, want 42", v.V)
	}
}

func TestExternGlobalIsInput(t *testing.T) {
	prog := compile(t, `
extern int config;
int f() { return config; }
`)
	src := newFixedSource()
	src.scalars["g:config"] = 77
	m, _ := New(Config{Prog: prog, Inputs: src})
	v, rerr := m.RunCall("f", nil)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if v.V != 77 {
		t.Errorf("config = %d", v.V)
	}
}

func TestDecisionRecords(t *testing.T) {
	prog := compile(t, `
struct s { int v; };
int f(struct s *p) { return p->v; }
`)
	src := newFixedSource()
	src.pointers["arg"] = true
	m, _ := New(Config{Prog: prog, Inputs: src, ShapeSearch: true})
	cell, _ := m.Mem().Alloc(1)
	if err := m.RandomInit(cell, mustPtrType(t, prog, "s"), "arg"); err != nil {
		t.Fatal(err)
	}
	av, _ := m.ArgValue(cell)
	if _, rerr := m.RunCall("f", []Value{av}); rerr != nil {
		t.Fatal(rerr)
	}
	var decisions int
	for _, b := range m.Branches {
		if b.Decision {
			decisions++
			if !b.Taken || b.Pred.Rel != symbolic.NE {
				t.Errorf("allocated pointer decision: %+v", b)
			}
		}
	}
	if decisions != 1 {
		t.Errorf("decision records = %d, want 1 (deduplicated)", decisions)
	}
}

func TestNoDecisionRecordsWhenDisabled(t *testing.T) {
	prog := compile(t, `
struct s { int v; };
int f(struct s *p) { if (p != NULL) return p->v; return 0; }
`)
	src := newFixedSource()
	src.pointers["arg"] = true
	m, _ := New(Config{Prog: prog, Inputs: src, ShapeSearch: false})
	cell, _ := m.Mem().Alloc(1)
	_ = m.RandomInit(cell, mustPtrType(t, prog, "s"), "arg")
	av, _ := m.ArgValue(cell)
	if _, rerr := m.RunCall("f", []Value{av}); rerr != nil {
		t.Fatal(rerr)
	}
	for _, b := range m.Branches {
		if b.Decision {
			t.Fatal("decision record emitted with ShapeSearch off")
		}
	}
}

func TestStdLibFunctions(t *testing.T) {
	src := `
int f(int a, int b) {
    int r = 0;
    r += abs(a - b);
    r += min(a, b) * 1000;
    r += max(a, b) * 100000;
    return r;
}
`
	if got := callInt(t, src, "f", 3, 8); got != 5+3*1000+8*100000 {
		t.Errorf("stdlib composition = %d", got)
	}
}

func TestMemFunctions(t *testing.T) {
	src := `
int f() {
    char *a = malloc(8);
    char *b = malloc(8);
    memset(a, 7, 8);
    memcpy(b, a, 8);
    return b[0] + b[7];
}
`
	if got := callInt(t, src, "f"); got != 14 {
		t.Errorf("memset/memcpy = %d", got)
	}
}

func TestStrFunctions(t *testing.T) {
	src := `
int f() {
    char *s = malloc(4);
    s[0] = 'h'; s[1] = 'i'; s[2] = 0;
    char *r = malloc(4);
    r[0] = 'h'; r[1] = 'i'; r[2] = 0;
    if (strcmp(s, r) != 0) return -1;
    r[1] = 'o';
    if (strcmp(s, r) < 0) return strlen(s);
    return -2;
}
`
	if got := callInt(t, src, "f"); got != 2 {
		t.Errorf("strlen/strcmp = %d", got)
	}
}

func TestAllocaLimit(t *testing.T) {
	src := `
int f(int n) {
    char *p = alloca(n);
    if (p == NULL) return -1;
    p[0] = 1;
    return 1;
}
`
	if got := callInt(t, src, "f", 100); got != 1 {
		t.Errorf("small alloca = %d", got)
	}
	if got := callInt(t, src, "f", AllocaLimit+1); got != -1 {
		t.Errorf("oversized alloca = %d, want -1", got)
	}
	if got := callInt(t, src, "f", 0); got != -1 {
		t.Errorf("alloca(0) = %d, want -1", got)
	}
}

func TestFrameSymbolsClearedOnReturn(t *testing.T) {
	// A stale symbolic shadow from a popped frame must not taint a later
	// frame at the same address.
	prog := compile(t, `
int id(int x) { return x; }
int probe(int x) {
    int a = id(x);
    int b = id(7);
    return b;
}
`)
	m, _ := New(Config{Prog: prog, Inputs: newFixedSource()})
	v, rerr := m.RunCall("probe", []Value{{V: 3, Sym: symbolic.NewVar(0)}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if v.V != 7 {
		t.Fatalf("probe = %d", v.V)
	}
	if v.Sym != nil && !v.Sym.IsConst() {
		t.Errorf("constant result carries symbolic taint: %v", v.Sym)
	}
}

func TestSwitchSemantics(t *testing.T) {
	src := `
int classify(int x) {
    int r = 0;
    switch (x) {
    case 1:
        r = 10;
        break;
    case 2:
        r = 20;       /* falls through */
    case 3:
        r = r + 30;
        break;
    default:
        r = -1;
    }
    return r;
}
`
	cases := map[int64]int64{1: 10, 2: 50, 3: 30, 99: -1, 0: -1}
	for in, want := range cases {
		if got := callInt(t, src, "classify", in); got != want {
			t.Errorf("classify(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	// continue inside a switch must bind to the loop, break to the switch.
	src := `
int count(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        switch (i % 3) {
        case 0:
            continue;
        case 1:
            total += 1;
            break;
        default:
            total += 100;
        }
        total += 1000;
    }
    return total;
}
`
	// i: 0 c0(skip), 1 c1(+1+1000), 2 def(+100+1000), 3 c0, 4 c1, 5 def, 6 c0
	if got := callInt(t, src, "count", 7); got != 2*(1+1000)+2*(100+1000) {
		t.Errorf("count(7) = %d", got)
	}
}

func TestSwitchConstantTag(t *testing.T) {
	src := `
int pick() {
    switch (2) {
    case 1: return 100;
    case 2: return 200;
    }
    return 0;
}
`
	if got := callInt(t, src, "pick"); got != 200 {
		t.Errorf("pick() = %d", got)
	}
}

func TestSwitchNoDefaultFallsPast(t *testing.T) {
	src := `
int f(int x) {
    switch (x) {
    case 5: return 1;
    }
    return 2;
}
`
	if got := callInt(t, src, "f", 6); got != 2 {
		t.Errorf("f(6) = %d", got)
	}
}
