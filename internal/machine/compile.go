// Closure-threaded compilation of the RAM-machine IR.
//
// Compile lowers each ir.Func once into a flat array of op closures
// (direct-threaded code): operand addressing, call targets, store
// widths, and operator dispatch are all resolved at compile time, so
// the step loop executes one indirect call per instruction with no
// ir.Expr re-traversal and no type switches.  The symbolic shadow of
// Fig. 1 is pay-as-you-go: compiled Load ops consult the memory's
// per-cell taint bitmap, and an instruction whose operands never
// touched a tainted cell skips shadow evaluation entirely — sound
// because evaluate_symbolic over all-constant leaves yields a constant
// form and never clears a completeness flag (see DESIGN.md).  When the
// shadow is needed, the op falls back to the reference evalSymbolic /
// branchPred walkers over the original expression, so both engines
// share one definition of the symbolic semantics.
//
// A Compiled is immutable after Compile returns and may be shared by
// any number of machines and goroutines.
package machine

import (
	"fmt"

	"dart/internal/ir"
	"dart/internal/symbolic"
	"dart/internal/token"
	"dart/internal/types"
)

// Compiled is the closure-threaded form of one program.
type Compiled struct {
	funcs map[string]*cfunc
}

type cfunc struct {
	f    *ir.Func
	code []cop
}

// cop executes one instruction against machine state; it returns the
// next pc, retPC after a Ret (result in m.retV), or a run error.
type cop func(m *Machine, frame int64) (int, *RunError)

// cexpr evaluates one expression concretely.  Errors are raw memory
// faults / arithmetic errors; the enclosing op attaches the position.
type cexpr func(m *Machine, frame int64) (int64, error)

// retPC is the sentinel next-pc a Ret op returns.  Negative branch
// targets are intercepted at compile time so they cannot collide.
const retPC = -1

// Compile lowers every function of p.  The result is self-contained:
// call instructions bind directly to their compiled callees.
func Compile(p *ir.Prog) *Compiled {
	c := &Compiled{funcs: make(map[string]*cfunc, len(p.Funcs))}
	// Two phases so mutually recursive calls can bind their targets.
	for name, f := range p.Funcs {
		c.funcs[name] = &cfunc{f: f}
	}
	for _, cf := range c.funcs {
		code := make([]cop, len(cf.f.Code))
		for pc, ins := range cf.f.Code {
			code[pc] = c.compileIns(ins, pc, cf.f)
		}
		cf.code = code
	}
	return c
}

// execCompiled runs one function activation on the compiled code.
func (m *Machine) execCompiled(cf *cfunc, args []Value) (Value, *RunError) {
	if cf == nil {
		return Value{}, &RunError{Outcome: Crashed, Msg: "machine: compiled code does not match program"}
	}
	if m.callDepth >= maxCallDepth {
		return Value{}, &RunError{Outcome: Crashed, Msg: "stack overflow (recursion too deep)"}
	}
	m.callDepth++
	defer func() { m.callDepth-- }()

	f := cf.f
	frame := m.mem.PushFrame(f.FrameSize)
	// PopFrame clears the frame's taint bits, killing its shadows before
	// the addresses are recycled — this also runs on error unwinds and
	// panics, so a failed run leaves the pooled state consistent.
	defer m.mem.PopFrame(frame, f.FrameSize)

	for i, p := range f.Params {
		addr := frame + p.Slot
		if err := m.mem.Store(addr, truncStore(p.Type, args[i].V)); err != nil {
			return Value{}, m.memErr(err, token.Pos{})
		}
		if args[i].Sym != nil && !args[i].Sym.IsConst() {
			m.setSym(addr, args[i].Sym)
		}
	}

	code := cf.code
	pc := 0
	for {
		if pc < 0 || pc >= len(code) {
			return Value{}, &RunError{Outcome: Crashed, Msg: fmt.Sprintf("pc %d out of range in %s", pc, f.Name)}
		}
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, &RunError{Outcome: StepLimit, Msg: "step budget exhausted (possible non-termination)"}
		}
		if m.supervised && m.steps&(interruptStride-1) == 0 {
			if re := m.checkInterrupt(); re != nil {
				return Value{}, re
			}
		}
		next, rerr := code[pc](m, frame)
		if rerr != nil {
			return Value{}, rerr
		}
		if next == retPC {
			ret := m.retV
			m.retV = Value{}
			return ret, nil
		}
		pc = next
	}
}

// pushArgs reserves an n-Value segment on the shared argument scratch
// stack.  Reallocation is safe: callers consume their segment before
// any nested call can push another.
func (m *Machine) pushArgs(n int) []Value {
	base := len(m.argStack)
	need := base + n
	if cap(m.argStack) < need {
		ns := make([]Value, need, need*2+8)
		copy(ns, m.argStack)
		m.argStack = ns
	} else {
		m.argStack = m.argStack[:need]
	}
	return m.argStack[base:need:need]
}

// popArgs releases the topmost n-Value segment, zeroing it so pooled
// scratch never retains symbolic values across runs.
func (m *Machine) popArgs(n int) {
	top := len(m.argStack)
	for i := top - n; i < top; i++ {
		m.argStack[i] = Value{}
	}
	m.argStack = m.argStack[:top-n]
}

// ---------------------------------------------------------------- ops

func (c *Compiled) compileIns(ins ir.Instr, pc int, f *ir.Func) cop {
	next := pc + 1
	switch ins := ins.(type) {
	case *ir.Assign:
		dst := c.compileExpr(ins.Dst)
		src := c.compileExpr(ins.Src)
		storeTy, srcExpr, pos := ins.StoreTy, ins.Src, ins.Pos
		return func(m *Machine, frame int64) (int, *RunError) {
			addr, err := dst(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			m.taintHit = false
			v, err := src(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			if storeTy != nil {
				v = types.Truncate(storeTy, v)
			}
			// Shadow evaluation only when the source touched a tainted
			// cell; it must run before the store (the source may read
			// the destination cell).
			var sym *symbolic.Lin
			if m.taintHit {
				sym = m.shadowEval(srcExpr, frame)
			}
			if err := m.mem.Store(addr, v); err != nil {
				return 0, m.memErr(err, pos)
			}
			if sym != nil && !sym.IsConst() {
				m.setSym(addr, sym)
			} else {
				m.clearSym(addr)
			}
			return next, nil
		}

	case *ir.IfGoto:
		cond := c.compileExpr(ins.Cond)
		condExpr, site, target, pos := ins.Cond, ins.Site, ins.Target, ins.Pos
		// A negative target would collide with the retPC sentinel; a
		// taken jump must crash exactly as the interpreter's loop-top
		// bound check does.
		badTarget := ""
		if target < 0 {
			badTarget = fmt.Sprintf("pc %d out of range in %s", target, f.Name)
		}
		return func(m *Machine, frame int64) (int, *RunError) {
			m.taintHit = false
			cv, err := cond(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			taken := cv != 0
			var rec BranchRec
			if m.taintHit {
				m.shadowEvals++
				pred, hasPred, fallback := m.branchPred(condExpr, frame, taken)
				rec = BranchRec{Site: site, Taken: taken, Pred: pred, HasPred: hasPred, Fallback: fallback, Pos: pos}
			} else {
				// No tainted operand: the condition cannot depend on
				// inputs, the shadow would be constant, and the record
				// is the interpreter's concrete fallback.
				rec = BranchRec{Site: site, Taken: taken, Fallback: FallbackConcrete, Pos: pos}
			}
			m.Branches = append(m.Branches, rec)
			if m.onBranch != nil {
				if herr := m.onBranch(rec); herr != nil {
					return 0, &RunError{Outcome: Mispredicted, Msg: herr.Error(), Pos: pos}
				}
			}
			if taken {
				if badTarget != "" {
					return 0, &RunError{Outcome: Crashed, Msg: badTarget}
				}
				return target, nil
			}
			return next, nil
		}

	case *ir.Goto:
		target := ins.Target
		if target < 0 {
			msg := fmt.Sprintf("pc %d out of range in %s", target, f.Name)
			return func(m *Machine, frame int64) (int, *RunError) {
				return 0, &RunError{Outcome: Crashed, Msg: msg}
			}
		}
		return func(m *Machine, frame int64) (int, *RunError) {
			return target, nil
		}

	case *ir.Call:
		callee := c.funcs[ins.Fn]
		nargs := len(ins.Args)
		cargs := make([]cexpr, nargs)
		argExprs := make([]ir.Expr, nargs)
		for i, a := range ins.Args {
			cargs[i] = c.compileExpr(a)
			argExprs[i] = a
		}
		var dst cexpr
		if ins.Dst != nil {
			dst = c.compileExpr(ins.Dst)
		}
		fn, pos := ins.Fn, ins.Pos
		if callee == nil {
			return func(m *Machine, frame int64) (int, *RunError) {
				return 0, &RunError{Outcome: Crashed, Msg: "no such function " + fn, Pos: pos}
			}
		}
		return func(m *Machine, frame int64) (int, *RunError) {
			args := m.pushArgs(nargs)
			for i := 0; i < nargs; i++ {
				m.taintHit = false
				v, err := cargs[i](m, frame)
				if err != nil {
					m.popArgs(nargs)
					return 0, m.memErr(err, pos)
				}
				var s *symbolic.Lin
				if m.taintHit {
					s = m.shadowEval(argExprs[i], frame)
				}
				args[i] = Value{V: v, Sym: s}
			}
			// The destination is a caller-frame temporary; resolve it
			// before the callee's frame is live.
			var dstAddr int64
			if dst != nil {
				var err error
				dstAddr, err = dst(m, frame)
				if err != nil {
					m.popArgs(nargs)
					return 0, m.memErr(err, pos)
				}
			}
			ret, rerr := m.execCompiled(callee, args)
			m.popArgs(nargs)
			if rerr != nil {
				return 0, rerr
			}
			if dst != nil {
				if err := m.mem.Store(dstAddr, ret.V); err != nil {
					return 0, m.memErr(err, pos)
				}
				if ret.Sym != nil && !ret.Sym.IsConst() {
					m.setSym(dstAddr, ret.Sym)
				} else {
					m.clearSym(dstAddr)
				}
			}
			return next, nil
		}

	case *ir.CallExt:
		fn, result, pos := ins.Fn, ins.Result, ins.Pos
		var dst cexpr
		if ins.Dst != nil {
			dst = c.compileExpr(ins.Dst)
		}
		voidish := ins.Dst == nil || types.IsVoid(ins.Result)
		return func(m *Machine, frame int64) (int, *RunError) {
			n := m.extCounts[fn]
			m.extCounts[fn] = n + 1
			if voidish {
				return next, nil
			}
			addr, err := dst(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			key := fmt.Sprintf("ext:%s#%d", fn, n)
			if err := m.RandomInit(addr, result, key); err != nil {
				return 0, m.memErr(err, pos)
			}
			return next, nil
		}

	case *ir.CallLib:
		fn, pos := ins.Fn, ins.Pos
		nargs := len(ins.Args)
		cargs := make([]cexpr, nargs)
		argExprs := make([]ir.Expr, nargs)
		for i, a := range ins.Args {
			cargs[i] = c.compileExpr(a)
			argExprs[i] = a
		}
		var dst cexpr
		if ins.Dst != nil {
			dst = c.compileExpr(ins.Dst)
		}
		return func(m *Machine, frame int64) (int, *RunError) {
			impl, ok := m.libs[fn]
			if !ok {
				return 0, &RunError{Outcome: Crashed, Msg: "library function " + fn + " has no implementation", Pos: pos}
			}
			args := make([]int64, nargs)
			anySymbolic := false
			for i := 0; i < nargs; i++ {
				m.taintHit = false
				v, err := cargs[i](m, frame)
				if err != nil {
					return 0, m.memErr(err, pos)
				}
				args[i] = v
				if m.taintHit {
					if s := m.shadowEval(argExprs[i], frame); s != nil && !s.IsConst() {
						anySymbolic = true
					}
				}
			}
			if anySymbolic {
				m.clearAllLinear()
			}
			ret, err := impl(m, args)
			if err != nil {
				return 0, &RunError{Outcome: Crashed, Msg: err.Error(), Pos: pos}
			}
			if dst != nil {
				addr, cerr := dst(m, frame)
				if cerr != nil {
					return 0, m.memErr(cerr, pos)
				}
				if serr := m.mem.Store(addr, ret); serr != nil {
					return 0, m.memErr(serr, pos)
				}
				m.clearSym(addr)
			}
			return next, nil
		}

	case *ir.Ret:
		if ins.Val == nil {
			return func(m *Machine, frame int64) (int, *RunError) {
				m.retV = Value{}
				return retPC, nil
			}
		}
		val := c.compileExpr(ins.Val)
		valExpr, pos := ins.Val, ins.Pos
		return func(m *Machine, frame int64) (int, *RunError) {
			m.taintHit = false
			v, err := val(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			var s *symbolic.Lin
			if m.taintHit {
				s = m.shadowEval(valExpr, frame)
			}
			m.retV = Value{V: v, Sym: s}
			return retPC, nil
		}

	case *ir.Alloc:
		size := c.compileExpr(ins.Size)
		dst := c.compileExpr(ins.Dst)
		pos := ins.Pos
		return func(m *Machine, frame int64) (int, *RunError) {
			sz, err := size(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			if sz < 0 {
				return 0, &RunError{Outcome: Crashed, Msg: fmt.Sprintf("malloc with negative size %d", sz), Pos: pos}
			}
			region, err := m.mem.Alloc(sz)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			addr, err := dst(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			if err := m.mem.Store(addr, region); err != nil {
				return 0, m.memErr(err, pos)
			}
			m.clearSym(addr)
			return next, nil
		}

	case *ir.Free:
		ptr := c.compileExpr(ins.Ptr)
		pos := ins.Pos
		return func(m *Machine, frame int64) (int, *RunError) {
			p, err := ptr(m, frame)
			if err != nil {
				return 0, m.memErr(err, pos)
			}
			if err := m.mem.Free(p); err != nil {
				return 0, m.memErr(err, pos)
			}
			return next, nil
		}

	case *ir.Abort:
		msg, pos := ins.Msg, ins.Pos
		return func(m *Machine, frame int64) (int, *RunError) {
			return 0, &RunError{Outcome: Aborted, Msg: msg, Pos: pos}
		}

	case *ir.Halt:
		return func(m *Machine, frame int64) (int, *RunError) {
			return 0, &RunError{Outcome: HaltOK, Msg: "halt"}
		}

	default:
		msg := fmt.Sprintf("bad instruction %T", ins)
		return func(m *Machine, frame int64) (int, *RunError) {
			return 0, &RunError{Outcome: Crashed, Msg: msg}
		}
	}
}

// ---------------------------------------------------------------- exprs

// compileExpr lowers one expression tree into a closure chain with all
// operator and width dispatch resolved.  Loads feed the taint
// accumulator and the pointer-shape decision hook, exactly mirroring
// evalConcrete.
func (c *Compiled) compileExpr(e ir.Expr) cexpr {
	switch e := e.(type) {
	case *ir.Const:
		v := e.V
		return func(m *Machine, frame int64) (int64, error) { return v, nil }

	case *ir.FrameAddr:
		slot := e.Slot
		return func(m *Machine, frame int64) (int64, error) { return frame + slot, nil }

	case *ir.GlobalAddr:
		off := e.Off
		return func(m *Machine, frame int64) (int64, error) { return m.globalBase + off, nil }

	case *ir.Load:
		addr := c.compileExpr(e.Addr)
		return func(m *Machine, frame int64) (int64, error) {
			a, err := addr(m, frame)
			if err != nil {
				return 0, err
			}
			v, tainted, err := m.mem.LoadT(a)
			if err != nil {
				return 0, err
			}
			if tainted {
				m.taintHit = true
				if m.shapeSearch {
					if err := m.noteDecision(a, v, true); err != nil {
						return 0, err
					}
				}
			}
			return v, nil
		}

	case *ir.Un:
		a := c.compileExpr(e.A)
		tr := truncFn(e.Ty)
		switch e.Op {
		case ir.Neg:
			return func(m *Machine, frame int64) (int64, error) {
				v, err := a(m, frame)
				if err != nil {
					return 0, err
				}
				return tr(-v), nil
			}
		case ir.Not:
			return func(m *Machine, frame int64) (int64, error) {
				v, err := a(m, frame)
				if err != nil {
					return 0, err
				}
				return tr(b2i(v == 0)), nil
			}
		case ir.Compl:
			return func(m *Machine, frame int64) (int64, error) {
				v, err := a(m, frame)
				if err != nil {
					return 0, err
				}
				return tr(^v), nil
			}
		case ir.Conv:
			return func(m *Machine, frame int64) (int64, error) {
				v, err := a(m, frame)
				if err != nil {
					return 0, err
				}
				return tr(v), nil
			}
		default:
			return errExpr("bad unary op " + e.Op.String())
		}

	case *ir.Bin:
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		op := e.Op
		if op.IsComparison() {
			return func(m *Machine, frame int64) (int64, error) {
				x, err := a(m, frame)
				if err != nil {
					return 0, err
				}
				y, err := b(m, frame)
				if err != nil {
					return 0, err
				}
				switch op {
				case ir.Eq:
					return b2i(x == y), nil
				case ir.Ne:
					return b2i(x != y), nil
				case ir.Lt:
					return b2i(x < y), nil
				case ir.Le:
					return b2i(x <= y), nil
				case ir.Gt:
					return b2i(x > y), nil
				default: // Ge
					return b2i(x >= y), nil
				}
			}
		}
		tr := truncFn(e.Ty)
		var apply func(x, y int64) (int64, error)
		switch op {
		case ir.Add:
			apply = func(x, y int64) (int64, error) { return x + y, nil }
		case ir.Sub:
			apply = func(x, y int64) (int64, error) { return x - y, nil }
		case ir.Mul:
			apply = func(x, y int64) (int64, error) { return x * y, nil }
		case ir.Div:
			apply = func(x, y int64) (int64, error) {
				if y == 0 {
					return 0, errDivZero
				}
				return x / y, nil
			}
		case ir.Mod:
			apply = func(x, y int64) (int64, error) {
				if y == 0 {
					return 0, errDivZero
				}
				return x % y, nil
			}
		case ir.And:
			apply = func(x, y int64) (int64, error) { return x & y, nil }
		case ir.Or:
			apply = func(x, y int64) (int64, error) { return x | y, nil }
		case ir.Xor:
			apply = func(x, y int64) (int64, error) { return x ^ y, nil }
		case ir.Shl:
			apply = func(x, y int64) (int64, error) { return x << (uint64(y) & 63), nil }
		case ir.Shr:
			apply = func(x, y int64) (int64, error) { return x >> (uint64(y) & 63), nil }
		default:
			return errExpr("bad binary op " + op.String())
		}
		return func(m *Machine, frame int64) (int64, error) {
			x, err := a(m, frame)
			if err != nil {
				return 0, err
			}
			y, err := b(m, frame)
			if err != nil {
				return 0, err
			}
			v, err := apply(x, y)
			if err != nil {
				return 0, err
			}
			return tr(v), nil
		}
	}
	return errExpr("bad expression")
}

// truncFn resolves width truncation once; identity when untyped.
func truncFn(ty *types.Basic) func(int64) int64 {
	if ty == nil {
		return func(v int64) int64 { return v }
	}
	return func(v int64) int64 { return types.Truncate(ty, v) }
}

func errExpr(msg string) cexpr {
	return func(m *Machine, frame int64) (int64, error) {
		return 0, fmt.Errorf("%s", msg)
	}
}
