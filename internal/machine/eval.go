package machine

import (
	"errors"

	"dart/internal/ir"
	"dart/internal/symbolic"
	"dart/internal/types"
)

var errDivZero = errors.New("division by zero")

// evalConcrete is the paper's evaluate_concrete(e, M): standard RAM-
// machine expression evaluation with C's wrapping integer semantics.
func (m *Machine) evalConcrete(e ir.Expr, frame int64) (int64, error) {
	switch e := e.(type) {
	case *ir.Const:
		return e.V, nil
	case *ir.FrameAddr:
		return frame + e.Slot, nil
	case *ir.GlobalAddr:
		return m.globalBase + e.Off, nil
	case *ir.Load:
		addr, err := m.evalConcrete(e.Addr, frame)
		if err != nil {
			return 0, err
		}
		v, tainted, err := m.mem.LoadT(addr)
		if err != nil {
			return 0, err
		}
		if err := m.noteDecision(addr, v, tainted); err != nil {
			return 0, err
		}
		return v, nil
	case *ir.Un:
		a, err := m.evalConcrete(e.A, frame)
		if err != nil {
			return 0, err
		}
		var v int64
		switch e.Op {
		case ir.Neg:
			v = -a
		case ir.Not:
			if a == 0 {
				v = 1
			}
		case ir.Compl:
			v = ^a
		case ir.Conv:
			v = a
		default:
			return 0, errors.New("bad unary op " + e.Op.String())
		}
		if e.Ty != nil {
			v = types.Truncate(e.Ty, v)
		}
		return v, nil
	case *ir.Bin:
		a, err := m.evalConcrete(e.A, frame)
		if err != nil {
			return 0, err
		}
		b, err := m.evalConcrete(e.B, frame)
		if err != nil {
			return 0, err
		}
		v, err := applyBin(e.Op, a, b)
		if err != nil {
			return 0, err
		}
		if e.Ty != nil && !e.Op.IsComparison() {
			v = types.Truncate(e.Ty, v)
		}
		return v, nil
	}
	return 0, errors.New("bad expression")
}

func applyBin(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.Add:
		return a + b, nil
	case ir.Sub:
		return a - b, nil
	case ir.Mul:
		return a * b, nil
	case ir.Div:
		if b == 0 {
			return 0, errDivZero
		}
		return a / b, nil
	case ir.Mod:
		if b == 0 {
			return 0, errDivZero
		}
		return a % b, nil
	case ir.And:
		return a & b, nil
	case ir.Or:
		return a | b, nil
	case ir.Xor:
		return a ^ b, nil
	case ir.Shl:
		return a << (uint64(b) & 63), nil
	case ir.Shr:
		return a >> (uint64(b) & 63), nil
	case ir.Eq:
		return b2i(a == b), nil
	case ir.Ne:
		return b2i(a != b), nil
	case ir.Lt:
		return b2i(a < b), nil
	case ir.Le:
		return b2i(a <= b), nil
	case ir.Gt:
		return b2i(a > b), nil
	case ir.Ge:
		return b2i(a >= b), nil
	}
	return 0, errors.New("bad binary op " + op.String())
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// evalSymbolic is Fig. 1's evaluate_symbolic(e, M, S), boxing the
// tri-state evalSym result into a Lin.  It returns an affine form over
// input variables; whenever the expression leaves the linear theory it
// falls back to the concrete value (a constant form) and clears the
// corresponding completeness flag.  It returns nil only when the
// underlying concrete evaluation faults, in which case the caller's
// concrete evaluation reports the fault.
func (m *Machine) evalSymbolic(e ir.Expr, frame int64) *symbolic.Lin {
	l, k, fault := m.evalSym(e, frame)
	if fault {
		return nil
	}
	if l == nil {
		return m.lins.NewConst(k)
	}
	return l
}

// evalSym is evaluate_symbolic with constant forms carried unboxed: the
// result is either a genuinely symbolic affine form (l != nil; never a
// constant — collapsed forms are normalized to the k representation), a
// constant (l == nil, value k), or a fault of the underlying concrete
// evaluation (fault == true).  Constants dominate real expression trees
// — literals, frame/global addresses, untainted loads, out-of-theory
// fallbacks — so keeping them out of Lin boxes removes the bulk of the
// shadow's allocation traffic; a box is materialized only where a
// constant meets a symbolic operand in +/−/neg (and then usually from
// the interned pool).
func (m *Machine) evalSym(e ir.Expr, frame int64) (l *symbolic.Lin, k int64, fault bool) {
	switch e := e.(type) {
	case *ir.Const:
		return nil, e.V, false
	case *ir.FrameAddr:
		return nil, frame + e.Slot, false
	case *ir.GlobalAddr:
		return nil, m.globalBase + e.Off, false
	case *ir.Load:
		la, ka, fa := m.evalSym(e.Addr, frame)
		if fa {
			return nil, 0, true
		}
		if la != nil {
			if !m.pointerShapeOnly(la) {
				// Dereference through an arithmetic-input-dependent
				// address: the paper's all_locs_definite case — fall
				// back to the concrete value.
				m.clearAllLocsDefinite()
				return m.concreteK(e, frame)
			}
			// Refinement (invited by Sec. 2.3): the address depends only
			// on pointer-shape inputs, whose values are pinned for the
			// duration of a run by the NULL-check predicates and the
			// input vector, so the concrete address is definite.
			addr, err := m.evalConcrete(e.Addr, frame)
			if err != nil {
				return nil, 0, true
			}
			return m.loadSymK(addr)
		}
		return m.loadSymK(ka)
	case *ir.Un:
		la, ka, fa := m.evalSym(e.A, frame)
		if fa {
			return nil, 0, true
		}
		switch e.Op {
		case ir.Neg:
			a := la
			if a == nil {
				a = m.lins.NewConst(ka)
			}
			if r := m.lins.Scale(a, -1); r != nil {
				return m.wrapK(r, e.Ty)
			}
			m.clearAllLinear()
			return m.concreteK(e, frame)
		case ir.Conv:
			if la == nil {
				return nil, types.Truncate(e.Ty, ka), false
			}
			// Width truncation of a symbolic value is non-linear; treat
			// the common no-op case (value provably in range is unknowable
			// here) conservatively.
			m.clearAllLinear()
			return m.concreteK(e, frame)
		default: // Not, Compl
			if la == nil {
				return m.concreteK(e, frame)
			}
			m.clearAllLinear()
			return m.concreteK(e, frame)
		}
	case *ir.Bin:
		la, ka, fa := m.evalSym(e.A, frame)
		if fa {
			return nil, 0, true
		}
		lb, kb, fb := m.evalSym(e.B, frame)
		if fb {
			return nil, 0, true
		}
		if la == nil && lb == nil {
			return m.concreteK(e, frame)
		}
		switch e.Op {
		case ir.Add:
			a, b := la, lb
			if a == nil {
				a = m.lins.NewConst(ka)
			}
			if b == nil {
				b = m.lins.NewConst(kb)
			}
			if r := m.lins.Add(a, b); r != nil {
				return m.wrapK(r, e.Ty)
			}
		case ir.Sub:
			a, b := la, lb
			if a == nil {
				a = m.lins.NewConst(ka)
			}
			if b == nil {
				b = m.lins.NewConst(kb)
			}
			if r := m.lins.Sub(a, b); r != nil {
				return m.wrapK(r, e.Ty)
			}
		case ir.Mul:
			// Fig. 1: symbolic*symbolic is outside the theory; constant
			// scaling stays inside.
			if la == nil {
				if r := m.lins.Scale(lb, ka); r != nil {
					return m.wrapK(r, e.Ty)
				}
			} else if lb == nil {
				if r := m.lins.Scale(la, kb); r != nil {
					return m.wrapK(r, e.Ty)
				}
			}
		case ir.Shl:
			// x << k with constant k is scaling by 2^k: still linear.
			if lb == nil && kb >= 0 && kb < 62 {
				if r := m.lins.Scale(la, int64(1)<<uint(kb)); r != nil {
					return m.wrapK(r, e.Ty)
				}
			}
		}
		// Division, modulus, bitwise operators, comparisons used as
		// values, shifts by symbolic amounts, symbolic*symbolic: all
		// outside linear integer arithmetic.
		m.clearAllLinear()
		return m.concreteK(e, frame)
	}
	return nil, 0, true
}

// wrapK applies width truncation when the affine form collapsed to a
// constant (normalizing it back to evalSym's unboxed representation);
// symbolic forms are left untruncated (the linear theory models
// unbounded integers, as the paper's lp_solve backend did).
func (m *Machine) wrapK(l *symbolic.Lin, ty *types.Basic) (*symbolic.Lin, int64, bool) {
	if l.IsConst() {
		k := l.ConstVal()
		if ty != nil {
			k = types.Truncate(ty, k)
		}
		return nil, k, false
	}
	return l, 0, false
}

// loadSymK reads the symbolic (or concrete) content of a definite
// address.  The taint bit gates the shadow map: a clear bit means the
// cell is concrete even if a stale map entry survives from an earlier
// frame or overwrite.  (Shadow entries are non-const by the setSym
// call sites' discipline, preserving evalSym's normalization.)
func (m *Machine) loadSymK(addr int64) (*symbolic.Lin, int64, bool) {
	v, tainted, err := m.mem.LoadT(addr)
	if err != nil {
		return nil, 0, true
	}
	if tainted {
		if s, ok := m.sym[addr]; ok {
			return s, 0, false
		}
	}
	return nil, v, false
}

// pointerShapeOnly reports whether every variable of the form is a
// pointer input (so the form's value is fixed by shape decisions alone).
func (m *Machine) pointerShapeOnly(l *symbolic.Lin) bool {
	for _, v := range l.Vars() {
		if !m.inputs.IsPointerVar(v) {
			return false
		}
	}
	return true
}

// concreteK is the fallback of Fig. 1: the expression's concrete value
// as an (unboxed) constant form.
func (m *Machine) concreteK(e ir.Expr, frame int64) (*symbolic.Lin, int64, bool) {
	v, err := m.evalConcrete(e, frame)
	if err != nil {
		return nil, 0, true
	}
	return nil, v, false
}
