package machine

import (
	"errors"

	"dart/internal/ir"
	"dart/internal/symbolic"
	"dart/internal/types"
)

var errDivZero = errors.New("division by zero")

// evalConcrete is the paper's evaluate_concrete(e, M): standard RAM-
// machine expression evaluation with C's wrapping integer semantics.
func (m *Machine) evalConcrete(e ir.Expr, frame int64) (int64, error) {
	switch e := e.(type) {
	case *ir.Const:
		return e.V, nil
	case *ir.FrameAddr:
		return frame + e.Slot, nil
	case *ir.GlobalAddr:
		return m.globalBase + e.Off, nil
	case *ir.Load:
		addr, err := m.evalConcrete(e.Addr, frame)
		if err != nil {
			return 0, err
		}
		v, err := m.mem.Load(addr)
		if err != nil {
			return 0, err
		}
		if err := m.noteDecision(addr, v); err != nil {
			return 0, err
		}
		return v, nil
	case *ir.Un:
		a, err := m.evalConcrete(e.A, frame)
		if err != nil {
			return 0, err
		}
		var v int64
		switch e.Op {
		case ir.Neg:
			v = -a
		case ir.Not:
			if a == 0 {
				v = 1
			}
		case ir.Compl:
			v = ^a
		case ir.Conv:
			v = a
		default:
			return 0, errors.New("bad unary op " + e.Op.String())
		}
		if e.Ty != nil {
			v = types.Truncate(e.Ty, v)
		}
		return v, nil
	case *ir.Bin:
		a, err := m.evalConcrete(e.A, frame)
		if err != nil {
			return 0, err
		}
		b, err := m.evalConcrete(e.B, frame)
		if err != nil {
			return 0, err
		}
		v, err := applyBin(e.Op, a, b)
		if err != nil {
			return 0, err
		}
		if e.Ty != nil && !e.Op.IsComparison() {
			v = types.Truncate(e.Ty, v)
		}
		return v, nil
	}
	return 0, errors.New("bad expression")
}

func applyBin(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.Add:
		return a + b, nil
	case ir.Sub:
		return a - b, nil
	case ir.Mul:
		return a * b, nil
	case ir.Div:
		if b == 0 {
			return 0, errDivZero
		}
		return a / b, nil
	case ir.Mod:
		if b == 0 {
			return 0, errDivZero
		}
		return a % b, nil
	case ir.And:
		return a & b, nil
	case ir.Or:
		return a | b, nil
	case ir.Xor:
		return a ^ b, nil
	case ir.Shl:
		return a << (uint64(b) & 63), nil
	case ir.Shr:
		return a >> (uint64(b) & 63), nil
	case ir.Eq:
		return b2i(a == b), nil
	case ir.Ne:
		return b2i(a != b), nil
	case ir.Lt:
		return b2i(a < b), nil
	case ir.Le:
		return b2i(a <= b), nil
	case ir.Gt:
		return b2i(a > b), nil
	case ir.Ge:
		return b2i(a >= b), nil
	}
	return 0, errors.New("bad binary op " + op.String())
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// evalSymbolic is Fig. 1's evaluate_symbolic(e, M, S).  It returns an
// affine form over input variables; whenever the expression leaves the
// linear theory it falls back to the concrete value (a constant form) and
// clears the corresponding completeness flag.  It returns nil only when
// the underlying concrete evaluation faults, in which case the caller's
// concrete evaluation reports the fault.
func (m *Machine) evalSymbolic(e ir.Expr, frame int64) *symbolic.Lin {
	switch e := e.(type) {
	case *ir.Const:
		return symbolic.NewConst(e.V)
	case *ir.FrameAddr:
		return symbolic.NewConst(frame + e.Slot)
	case *ir.GlobalAddr:
		return symbolic.NewConst(m.globalBase + e.Off)
	case *ir.Load:
		la := m.evalSymbolic(e.Addr, frame)
		if la == nil {
			return nil
		}
		if !la.IsConst() {
			if !m.pointerShapeOnly(la) {
				// Dereference through an arithmetic-input-dependent
				// address: the paper's all_locs_definite case — fall
				// back to the concrete value.
				m.clearAllLocsDefinite()
				return m.concreteConst(e, frame)
			}
			// Refinement (invited by Sec. 2.3): the address depends only
			// on pointer-shape inputs, whose values are pinned for the
			// duration of a run by the NULL-check predicates and the
			// input vector, so the concrete address is definite.
			addr, err := m.evalConcrete(e.Addr, frame)
			if err != nil {
				return nil
			}
			return m.loadSym(addr)
		}
		return m.loadSym(la.ConstVal())
	case *ir.Un:
		a := m.evalSymbolic(e.A, frame)
		if a == nil {
			return nil
		}
		switch e.Op {
		case ir.Neg:
			if r := symbolic.Scale(a, -1); r != nil {
				return m.wrapConst(r, e.Ty)
			}
			m.clearAllLinear()
			return m.concreteConst(e, frame)
		case ir.Conv:
			if a.IsConst() {
				return symbolic.NewConst(types.Truncate(e.Ty, a.ConstVal()))
			}
			// Width truncation of a symbolic value is non-linear; treat
			// the common no-op case (value provably in range is unknowable
			// here) conservatively.
			m.clearAllLinear()
			return m.concreteConst(e, frame)
		default: // Not, Compl
			if a.IsConst() {
				return m.concreteConst(e, frame)
			}
			m.clearAllLinear()
			return m.concreteConst(e, frame)
		}
	case *ir.Bin:
		a := m.evalSymbolic(e.A, frame)
		if a == nil {
			return nil
		}
		b := m.evalSymbolic(e.B, frame)
		if b == nil {
			return nil
		}
		if a.IsConst() && b.IsConst() {
			return m.concreteConst(e, frame)
		}
		switch e.Op {
		case ir.Add:
			if r := symbolic.Add(a, b); r != nil {
				return m.wrapConst(r, e.Ty)
			}
		case ir.Sub:
			if r := symbolic.Sub(a, b); r != nil {
				return m.wrapConst(r, e.Ty)
			}
		case ir.Mul:
			// Fig. 1: symbolic*symbolic is outside the theory; constant
			// scaling stays inside.
			if a.IsConst() {
				if r := symbolic.Scale(b, a.ConstVal()); r != nil {
					return m.wrapConst(r, e.Ty)
				}
			} else if b.IsConst() {
				if r := symbolic.Scale(a, b.ConstVal()); r != nil {
					return m.wrapConst(r, e.Ty)
				}
			}
		case ir.Shl:
			// x << k with constant k is scaling by 2^k: still linear.
			if b.IsConst() && b.ConstVal() >= 0 && b.ConstVal() < 62 {
				if r := symbolic.Scale(a, int64(1)<<uint(b.ConstVal())); r != nil {
					return m.wrapConst(r, e.Ty)
				}
			}
		}
		// Division, modulus, bitwise operators, comparisons used as
		// values, shifts by symbolic amounts, symbolic*symbolic: all
		// outside linear integer arithmetic.
		m.clearAllLinear()
		return m.concreteConst(e, frame)
	}
	return nil
}

// wrapConst applies width truncation when the affine form collapsed to a
// constant; symbolic forms are left untruncated (the linear theory models
// unbounded integers, as the paper's lp_solve backend did).
func (m *Machine) wrapConst(l *symbolic.Lin, ty *types.Basic) *symbolic.Lin {
	if ty != nil && l.IsConst() {
		return symbolic.NewConst(types.Truncate(ty, l.ConstVal()))
	}
	return l
}

// loadSym reads the symbolic (or concrete) content of a definite address.
func (m *Machine) loadSym(addr int64) *symbolic.Lin {
	if s, ok := m.sym[addr]; ok {
		return s
	}
	v, err := m.mem.Load(addr)
	if err != nil {
		return nil
	}
	return symbolic.NewConst(v)
}

// pointerShapeOnly reports whether every variable of the form is a
// pointer input (so the form's value is fixed by shape decisions alone).
func (m *Machine) pointerShapeOnly(l *symbolic.Lin) bool {
	for _, v := range l.Vars() {
		if !m.inputs.IsPointerVar(v) {
			return false
		}
	}
	return true
}

// concreteConst is the fallback of Fig. 1: the expression's concrete
// value as a constant form.
func (m *Machine) concreteConst(e ir.Expr, frame int64) *symbolic.Lin {
	v, err := m.evalConcrete(e, frame)
	if err != nil {
		return nil
	}
	return symbolic.NewConst(v)
}
