package machine

import (
	"testing"

	"dart/internal/ir"
	"dart/internal/symbolic"
	"dart/internal/types"
)

// evalMachine builds a machine with one global cell and one symbolic
// input variable x0 stored at that cell.
func evalMachine(t *testing.T, concrete int64) (*Machine, ir.Expr) {
	t.Helper()
	prog := &ir.Prog{
		Funcs:      map[string]*ir.Func{},
		GlobalSize: 1,
	}
	src := newFixedSource()
	m, err := New(Config{Prog: prog, Inputs: src})
	if err != nil {
		t.Fatal(err)
	}
	addr := m.GlobalAddr(0)
	if err := m.Mem().Store(addr, concrete); err != nil {
		t.Fatal(err)
	}
	v, _ := src.VarOf("x", symbolic.ScalarVar, types.IntType)
	m.setSym(addr, symbolic.NewVar(v))
	return m, &ir.Load{Addr: &ir.GlobalAddr{Off: 0}}
}

func TestConcreteBinaryOps(t *testing.T) {
	m, _ := evalMachine(t, 0)
	cases := []struct {
		op   ir.Op
		a, b int64
		want int64
	}{
		{ir.Add, 7, 3, 10},
		{ir.Sub, 7, 3, 4},
		{ir.Mul, 7, 3, 21},
		{ir.Div, 7, 3, 2},
		{ir.Div, -7, 3, -2}, // C truncates toward zero
		{ir.Mod, 7, 3, 1},
		{ir.Mod, -7, 3, -1},
		{ir.And, 0b1100, 0b1010, 0b1000},
		{ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Shl, 3, 4, 48},
		{ir.Shr, 48, 4, 3},
		{ir.Shr, -8, 1, -4}, // arithmetic shift
		{ir.Eq, 5, 5, 1},
		{ir.Eq, 5, 6, 0},
		{ir.Ne, 5, 6, 1},
		{ir.Lt, 5, 6, 1},
		{ir.Le, 6, 6, 1},
		{ir.Gt, 6, 5, 1},
		{ir.Ge, 5, 6, 0},
	}
	for _, c := range cases {
		e := &ir.Bin{Op: c.op, A: &ir.Const{V: c.a}, B: &ir.Const{V: c.b}}
		got, err := m.evalConcrete(e, 0)
		if err != nil {
			t.Fatalf("%v(%d,%d): %v", c.op, c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestConcreteUnaryOps(t *testing.T) {
	m, _ := evalMachine(t, 0)
	cases := []struct {
		op   ir.Op
		a    int64
		want int64
	}{
		{ir.Neg, 5, -5},
		{ir.Not, 0, 1},
		{ir.Not, 7, 0},
		{ir.Compl, 0, -1},
		{ir.Conv, 9, 9},
	}
	for _, c := range cases {
		e := &ir.Un{Op: c.op, A: &ir.Const{V: c.a}}
		got, err := m.evalConcrete(e, 0)
		if err != nil {
			t.Fatalf("%v(%d): %v", c.op, c.a, err)
		}
		if got != c.want {
			t.Errorf("%v(%d) = %d, want %d", c.op, c.a, got, c.want)
		}
	}
}

func TestConcreteWrapping(t *testing.T) {
	m, _ := evalMachine(t, 0)
	e := &ir.Bin{Op: ir.Add, A: &ir.Const{V: 2147483647}, B: &ir.Const{V: 1}, Ty: types.IntType}
	got, _ := m.evalConcrete(e, 0)
	if got != -2147483648 {
		t.Errorf("int32 wrap = %d", got)
	}
	u := &ir.Un{Op: ir.Neg, A: &ir.Const{V: -2147483648}, Ty: types.IntType}
	got, _ = m.evalConcrete(u, 0)
	if got != -2147483648 {
		t.Errorf("-INT_MIN = %d (two's complement)", got)
	}
}

func TestConcreteFaults(t *testing.T) {
	m, _ := evalMachine(t, 0)
	if _, err := m.evalConcrete(&ir.Bin{Op: ir.Div, A: &ir.Const{V: 1}, B: &ir.Const{V: 0}}, 0); err == nil {
		t.Error("division by zero not reported")
	}
	if _, err := m.evalConcrete(&ir.Load{Addr: &ir.Const{V: 0}}, 0); err == nil {
		t.Error("NULL load not reported")
	}
}

// symEval evaluates the expression symbolically and returns the form.
func symEval(t *testing.T, m *Machine, e ir.Expr) *symbolic.Lin {
	t.Helper()
	l := m.evalSymbolic(e, 0)
	if l == nil {
		t.Fatal("symbolic evaluation returned nil")
	}
	return l
}

func TestSymbolicLinearOps(t *testing.T) {
	m, x := evalMachine(t, 5)
	// 3*x + 7 - x  ==  2x + 7
	e := &ir.Bin{
		Op: ir.Sub,
		A: &ir.Bin{
			Op: ir.Add,
			A:  &ir.Bin{Op: ir.Mul, A: &ir.Const{V: 3}, B: x},
			B:  &ir.Const{V: 7},
		},
		B: x,
	}
	l := symEval(t, m, e)
	if l.Coeff(0) != 2 || l.Const != 7 {
		t.Errorf("form = %v, want 2*x0 + 7", l)
	}
	if !m.AllLinear() {
		t.Error("linear expression cleared all_linear")
	}
}

func TestSymbolicShiftAsScaling(t *testing.T) {
	m, x := evalMachine(t, 5)
	e := &ir.Bin{Op: ir.Shl, A: x, B: &ir.Const{V: 3}}
	l := symEval(t, m, e)
	if l.Coeff(0) != 8 {
		t.Errorf("x << 3 = %v, want 8*x0", l)
	}
	if !m.AllLinear() {
		t.Error("constant shift cleared all_linear")
	}
}

func TestSymbolicNonlinearFallbacks(t *testing.T) {
	mk := func() (*Machine, ir.Expr) { return evalMachine(t, 5) }
	cases := []struct {
		name  string
		build func(x ir.Expr) ir.Expr
	}{
		{"x*x", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Mul, A: x, B: x} }},
		{"x/2", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Div, A: x, B: &ir.Const{V: 2}} }},
		{"x%3", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Mod, A: x, B: &ir.Const{V: 3}} }},
		{"x&1", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.And, A: x, B: &ir.Const{V: 1}} }},
		{"x|1", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Or, A: x, B: &ir.Const{V: 1}} }},
		{"x^1", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Xor, A: x, B: &ir.Const{V: 1}} }},
		{"2<<x", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Shl, A: &ir.Const{V: 2}, B: x} }},
		{"x>>1", func(x ir.Expr) ir.Expr { return &ir.Bin{Op: ir.Shr, A: x, B: &ir.Const{V: 1}} }},
		{"~x", func(x ir.Expr) ir.Expr { return &ir.Un{Op: ir.Compl, A: x} }},
		{"(char)x", func(x ir.Expr) ir.Expr { return &ir.Un{Op: ir.Conv, A: x, Ty: types.CharType} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, x := mk()
			l := symEval(t, m, c.build(x))
			if !l.IsConst() {
				t.Errorf("fallback should be the concrete constant, got %v", l)
			}
			if m.AllLinear() {
				t.Error("all_linear not cleared")
			}
		})
	}
}

func TestSymbolicNegStaysLinear(t *testing.T) {
	m, x := evalMachine(t, 5)
	l := symEval(t, m, &ir.Un{Op: ir.Neg, A: x})
	if l.Coeff(0) != -1 {
		t.Errorf("-x = %v", l)
	}
	if !m.AllLinear() {
		t.Error("negation cleared all_linear")
	}
}

func TestSymbolicConstOpsStayComplete(t *testing.T) {
	// Constant-only nonlinear operations must not clear the flag.
	m, _ := evalMachine(t, 5)
	e := &ir.Bin{Op: ir.Mul, A: &ir.Const{V: 6}, B: &ir.Const{V: 7}}
	l := symEval(t, m, e)
	if !l.IsConst() || l.ConstVal() != 42 {
		t.Errorf("6*7 = %v", l)
	}
	if !m.AllLinear() {
		t.Error("constant multiplication cleared all_linear")
	}
}

func TestBranchPredPolarity(t *testing.T) {
	cases := []struct {
		op      ir.Op
		taken   bool
		wantRel symbolic.Rel
	}{
		{ir.Eq, true, symbolic.EQ},
		{ir.Eq, false, symbolic.NE},
		{ir.Ne, true, symbolic.NE},
		{ir.Ne, false, symbolic.EQ},
		{ir.Lt, true, symbolic.LT},
		{ir.Lt, false, symbolic.GE},
		{ir.Le, true, symbolic.LE},
		{ir.Le, false, symbolic.GT},
		{ir.Gt, true, symbolic.GT},
		{ir.Gt, false, symbolic.LE},
		{ir.Ge, true, symbolic.GE},
		{ir.Ge, false, symbolic.LT},
	}
	for _, c := range cases {
		m, x := evalMachine(t, 5)
		cond := &ir.Bin{Op: c.op, A: x, B: &ir.Const{V: 9}}
		p, ok, _ := m.branchPred(cond, 0, c.taken)
		if !ok {
			t.Fatalf("%v taken=%v: no predicate", c.op, c.taken)
		}
		if p.Rel != c.wantRel {
			t.Errorf("%v taken=%v: rel %v, want %v", c.op, c.taken, p.Rel, c.wantRel)
		}
		if p.L.Coeff(0) != 1 || p.L.Const != -9 {
			t.Errorf("%v: form %v, want x0 - 9", c.op, p.L)
		}
	}
}

func TestBranchPredThroughNot(t *testing.T) {
	m, x := evalMachine(t, 5)
	cond := &ir.Un{Op: ir.Not, A: &ir.Bin{Op: ir.Eq, A: x, B: &ir.Const{V: 9}}}
	// !(x == 9) taken  ⇔  x == 9 not taken  ⇔  x - 9 != 0.
	p, ok, _ := m.branchPred(cond, 0, true)
	if !ok || p.Rel != symbolic.NE {
		t.Errorf("pred %v ok=%v", p, ok)
	}
}

func TestBranchPredPlainValue(t *testing.T) {
	m, x := evalMachine(t, 5)
	// if (x): taken ⇒ x != 0; not taken ⇒ x == 0.
	p, ok, _ := m.branchPred(x, 0, true)
	if !ok || p.Rel != symbolic.NE {
		t.Errorf("taken: %v ok=%v", p, ok)
	}
	p, ok, _ = m.branchPred(x, 0, false)
	if !ok || p.Rel != symbolic.EQ {
		t.Errorf("not taken: %v ok=%v", p, ok)
	}
}

func TestBranchPredConstant(t *testing.T) {
	m, _ := evalMachine(t, 5)
	cond := &ir.Bin{Op: ir.Eq, A: &ir.Const{V: 1}, B: &ir.Const{V: 1}}
	if _, ok, _ := m.branchPred(cond, 0, true); ok {
		t.Error("constant condition should have no predicate")
	}
	if !m.AllLinear() {
		t.Error("constant condition must not clear flags")
	}
}

func TestStoreClearsSymbolicShadow(t *testing.T) {
	m, x := evalMachine(t, 5)
	addr := m.GlobalAddr(0)
	// Overwrite the input cell with a constant via doAssign.
	ins := &ir.Assign{Dst: &ir.GlobalAddr{Off: 0}, Src: &ir.Const{V: 3}}
	if err := m.doAssign(ins, 0); err != nil {
		t.Fatal(err)
	}
	if _, still := m.SymAt(addr); still {
		t.Error("constant store left a stale symbolic shadow")
	}
	l := symEval(t, m, x)
	if !l.IsConst() || l.ConstVal() != 3 {
		t.Errorf("after store: %v", l)
	}
}

func TestPointerShapeOnlyRefinement(t *testing.T) {
	// A load through an address that is a pure pointer var stays definite
	// and does not clear all_locs_definite.
	prog := &ir.Prog{Funcs: map[string]*ir.Func{}, GlobalSize: 2}
	src := newFixedSource()
	m, err := New(Config{Prog: prog, Inputs: src})
	if err != nil {
		t.Fatal(err)
	}
	ptrCell := m.GlobalAddr(0)
	region, _ := m.Mem().Alloc(1)
	_ = m.Mem().Store(ptrCell, region)
	_ = m.Mem().Store(region, 99)
	pv, _ := src.VarOf("p", symbolic.PointerVar, nil)
	m.setSym(ptrCell, symbolic.NewVar(pv))
	sv, _ := src.VarOf("p.*", symbolic.ScalarVar, types.IntType)
	m.setSym(region, symbolic.NewVar(sv))

	deref := &ir.Load{Addr: &ir.Load{Addr: &ir.GlobalAddr{Off: 0}}}
	l := symEval(t, m, deref)
	if l.Coeff(sv) != 1 {
		t.Errorf("deref through pointer var = %v, want the pointee's variable", l)
	}
	if !m.AllLocsDefinite() {
		t.Error("pointer-shape-only address cleared all_locs_definite")
	}

	// Mixing in a scalar input makes the address indefinite.
	mixed := &ir.Load{Addr: &ir.Bin{
		Op: ir.Add,
		A:  &ir.Load{Addr: &ir.GlobalAddr{Off: 0}},
		B:  &ir.Load{Addr: &ir.Const{V: region}}, // the scalar input
	}}
	_ = m.evalSymbolic(mixed, 0)
	if m.AllLocsDefinite() {
		t.Error("scalar-dependent address did not clear all_locs_definite")
	}
}
