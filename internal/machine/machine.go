// Package machine executes compiled MiniC programs on the paper's RAM
// machine, intertwining the concrete execution with the symbolic
// bookkeeping of Fig. 1/Fig. 3 ("instrumented_program").
//
// One Machine represents one run: it owns the concrete memory M, the
// symbolic memory S, the per-run completeness flags (all_linear,
// all_locs_definite), and the sequence of branch records the directed
// search consumes.  The driver (package concolic) creates a fresh Machine
// per run, feeds it inputs through an InputSource, and observes branches
// through a hook so it can implement compare_and_update_stack.
package machine

import (
	"fmt"
	"time"

	"dart/internal/ir"
	"dart/internal/mem"
	"dart/internal/obs"
	"dart/internal/symbolic"
	"dart/internal/token"
	"dart/internal/types"
)

// Outcome classifies how a run ended.
type Outcome int

// Outcomes.
const (
	// HaltOK: the program ran to completion.
	HaltOK Outcome = iota
	// Aborted: abort() or a failed assertion (a genuine program error).
	Aborted
	// Crashed: a runtime fault — segmentation fault, division by zero
	// (also a genuine program error; the oSIP experiment counts these).
	Crashed
	// StepLimit: the step budget was exhausted; reported as potential
	// non-termination, mirroring the paper's watchdog timer.
	StepLimit
	// Mispredicted: the branch hook vetoed execution because the run
	// diverged from the predicted path (forcing_ok = 0 in Fig. 4).
	Mispredicted
	// Interrupted: the run was stopped from outside — the search's
	// wall-clock deadline passed or its cancel channel was closed.  Not a
	// program error; the driver ends the search with a partial report.
	Interrupted
)

func (o Outcome) String() string {
	switch o {
	case HaltOK:
		return "halt"
	case Aborted:
		return "abort"
	case Crashed:
		return "crash"
	case StepLimit:
		return "step-limit"
	case Mispredicted:
		return "mispredicted"
	case Interrupted:
		return "interrupted"
	}
	return "unknown"
}

// RunError describes an abnormal termination.
type RunError struct {
	Outcome Outcome
	Msg     string
	Pos     token.Pos
}

func (e *RunError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s (%s)", e.Outcome, e.Msg, e.Pos)
	}
	return fmt.Sprintf("%s: %s", e.Outcome, e.Msg)
}

// BranchRec is one executed conditional: the paper's (branch, done) stack
// entry enriched with the branch site and the symbolic predicate that
// held on this execution (HasPred is false when the condition fell
// outside the theory, in which case the branch cannot be flipped).
type BranchRec struct {
	Site    int
	Taken   bool
	Pred    symbolic.Pred
	HasPred bool
	// Fallback classifies why HasPred is false ("" otherwise):
	// "nonlinear" (the condition left the linear theory at this branch,
	// or upstream of it while all_linear was already cleared), "pointer"
	// (the condition depends on memory read through an indefinite
	// location), or "concrete" (the condition does not depend on inputs
	// at all).  The split between the first two is best-effort when the
	// condition's symbolic value was dropped upstream: the machine's
	// completeness flags say which regime the run had already left.
	Fallback string
	Pos      token.Pos
	// Decision marks a synthetic record emitted when the program first
	// reads a pointer input: the NULL-vs-allocate coin toss enters the
	// search tree so the directed search can flip input shapes
	// systematically (an extension of the paper's random-only shape
	// choice; see DESIGN.md).  Decision records carry Site == -1.
	Decision bool
}

// BranchHook observes each conditional as it executes.  Returning an
// error aborts the run with the Mispredicted outcome; the directed
// search uses this to implement Fig. 4's forcing check.
type BranchHook func(rec BranchRec) error

// InputSource supplies concrete input values and their symbolic
// identities.  The concolic engine implements it with the input vector IM
// (previous solution + random completion); the random-testing baseline
// implements it with a pure random stream.
type InputSource interface {
	// ScalarInput returns the concrete value for the scalar input named
	// key, of basic type b.
	ScalarInput(key string, b *types.Basic) int64
	// PointerInput reports whether the pointer input named key should be
	// a fresh allocation (true) or NULL (false).
	PointerInput(key string) bool
	// VarOf returns the symbolic variable standing for input key,
	// registering its kind and domain on first use.  Sources that do not
	// track symbolic state (pure random testing) return false.
	VarOf(key string, kind symbolic.VarKind, b *types.Basic) (symbolic.Var, bool)
	// IsPointerVar reports whether v identifies a pointer input.  The
	// machine uses it for the pointer-dereference refinement of Sec. 2.3:
	// an address that depends only on pointer-shape inputs is definite
	// once the shapes are fixed, so dereferencing it stays within the
	// theory instead of clearing all_locs_definite.
	IsPointerVar(v symbolic.Var) bool
}

// LibImpl is a host-implemented library function: a deterministic black
// box (Sec. 3.1) executed on concrete values only.
type LibImpl func(m *Machine, args []int64) (int64, error)

// Config assembles a Machine.
type Config struct {
	Prog *ir.Prog
	// Inputs supplies program inputs; required.
	Inputs InputSource
	// OnBranch observes conditionals; may be nil.
	OnBranch BranchHook
	// LibImpls maps library function names to implementations.
	LibImpls map[string]LibImpl
	// MaxSteps bounds execution (0 means DefaultMaxSteps).
	MaxSteps int64
	// ShapeSearch emits Decision branch records when pointer inputs are
	// first read, letting the driver search over input shapes.
	ShapeSearch bool
	// Deadline, when nonzero, interrupts the run once the wall clock
	// passes it; the run ends with the Interrupted outcome.  The check is
	// amortized over interruptStride instructions.
	Deadline time.Time
	// Cancel, when non-nil, interrupts the run as soon as it is closed
	// (checked on the same amortized schedule as Deadline).
	Cancel <-chan struct{}
	// Observer, when non-nil, receives FallbackConcrete trace events on
	// the true-to-false transition of a completeness flag (at most one
	// per flag per run, so observation never sits on the step loop).
	Observer obs.Sink
	// Code, when non-nil, selects the closure-threaded compiled engine
	// (see compile.go); it must have been produced by Compile on the same
	// Prog.  Nil selects the reference tree-walking interpreter.  One
	// Compiled is immutable and may be shared across machines and
	// goroutines.
	Code *Compiled
}

// DefaultMaxSteps is the non-termination watchdog budget.
const DefaultMaxSteps = 2_000_000

// Machine is the state of one instrumented run.
type Machine struct {
	prog     *ir.Prog
	mem      *mem.M
	sym      map[int64]*symbolic.Lin // the paper's S
	inputs   InputSource
	onBranch BranchHook
	libs     map[string]LibImpl

	globalBase int64
	steps      int64
	maxSteps   int64

	// supervised gates the amortized deadline/cancel poll so that
	// unsupervised runs (the common benchmark path) pay nothing for it.
	supervised bool
	deadline   time.Time
	cancel     <-chan struct{}

	// Completeness flags of Fig. 2 (true = still complete).
	allLinear       bool
	allLocsDefinite bool

	// obs receives FallbackConcrete events on flag transitions.
	obs obs.Sink

	// Branches is the executed conditional sequence (stack material).
	Branches []BranchRec

	// extCounts numbers successive calls to each external function so
	// that every call is a distinct input (Sec. 3.1).
	extCounts map[string]int

	// shapeSearch and decided implement the pointer-shape decision
	// records: each pointer input contributes at most one Decision
	// record per run, at its first concrete read.
	shapeSearch bool
	decided     map[symbolic.Var]bool

	callDepth int

	// code is the compiled form of prog (nil = interpreter).
	code *Compiled
	// taintHit is set by compiled Load ops when the loaded cell carried a
	// taint bit; compiled instructions reset it before evaluating their
	// operands and skip shadow evaluation when it stays false.
	taintHit bool
	// shadowEvals counts instruction-level symbolic shadow evaluations
	// (assign sources, call arguments, return values, branch conditions).
	// The taint bitmap's payoff is this number dropping to zero on fully
	// concrete programs under the compiled engine.
	shadowEvals int64
	// retV carries the compiled engine's return value out of the step
	// loop (the Ret op's channel to execCompiled).
	retV Value
	// argStack is scratch for compiled call-argument evaluation; segments
	// are pushed per call and popped on return so nested calls reuse one
	// backing array.
	argStack []Value
	// varLins interns the 1·v form per input variable.  A search's runs
	// re-initialize the same inputs thousands of times and the form is a
	// pure function of the Var, so the cache survives Reset.
	varLins map[symbolic.Var]*symbolic.Lin
	// lins batch-allocates the Lin headers the shadow and branch-
	// predicate paths produce (one chunk allocation per 512 forms).
	// Chunks are never recycled — published forms escape into BranchRec
	// snapshots — so Reset leaves the arena alone; the unused tail of
	// the current chunk is still virgin and keeps serving the next run.
	lins symbolic.Arena
}

// varLin returns the interned form 1·v + 0.
func (m *Machine) varLin(v symbolic.Var) *symbolic.Lin {
	if l, ok := m.varLins[v]; ok {
		return l
	}
	l := m.lins.NewVar(v)
	m.varLins[v] = l
	return l
}

// maxCallDepth bounds MiniC recursion so runaway recursion is reported
// as a crash (stack overflow) rather than exhausting the host stack.
const maxCallDepth = 8_000

// New creates a machine for one run and initializes global memory:
// initialized globals get their constant values; extern globals are
// environment inputs, initialized via RandomInit.
func New(cfg Config) (*Machine, error) {
	m := &Machine{
		prog:            cfg.Prog,
		mem:             mem.New(),
		sym:             map[int64]*symbolic.Lin{},
		inputs:          cfg.Inputs,
		onBranch:        cfg.OnBranch,
		libs:            cfg.LibImpls,
		maxSteps:        cfg.MaxSteps,
		allLinear:       true,
		allLocsDefinite: true,
		extCounts:       map[string]int{},
		shapeSearch:     cfg.ShapeSearch,
		decided:         map[symbolic.Var]bool{},
		varLins:         map[symbolic.Var]*symbolic.Lin{},
		supervised:      !cfg.Deadline.IsZero() || cfg.Cancel != nil,
		deadline:        cfg.Deadline,
		cancel:          cfg.Cancel,
		obs:             cfg.Observer,
	}
	if m.maxSteps == 0 {
		m.maxSteps = DefaultMaxSteps
	}
	m.code = cfg.Code
	if err := m.initGlobals(); err != nil {
		return nil, err
	}
	return m, nil
}

// initGlobals maps the global region and initializes it: initialized
// globals get their constant values; extern globals are environment
// inputs drawn through the current InputSource.
func (m *Machine) initGlobals() error {
	m.globalBase = m.mem.MapGlobals(m.prog.GlobalSize)
	for _, g := range m.prog.Globals {
		addr := m.globalBase + g.Off
		switch {
		case g.Extern:
			if err := m.RandomInit(addr, g.Type, "g:"+g.Name); err != nil {
				return err
			}
		case g.HasInit:
			if err := m.mem.Store(addr, truncStore(g.Type, g.Init)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reset rewinds the machine to the just-constructed state for a new run
// with a fresh input source, reusing every backing allocation (memory
// arrays, branch records, scratch stacks).  It restores exactly what New
// establishes: empty memory with re-initialized globals, zeroed step and
// shadow counters, raised completeness flags, and no branch, decision,
// or external-call state left over from the previous run — including
// after a run that ended in a fault, a step-limit trip, or a recovered
// panic.
func (m *Machine) Reset(inputs InputSource) error {
	m.inputs = inputs
	m.steps = 0
	m.callDepth = 0
	m.allLinear = true
	m.allLocsDefinite = true
	m.Branches = m.Branches[:0]
	m.taintHit = false
	m.shadowEvals = 0
	m.retV = Value{}
	m.argStack = m.argStack[:0]
	clear(m.extCounts)
	clear(m.decided)
	clear(m.sym)
	m.mem.Reset()
	return m.initGlobals()
}

// AllLinear reports whether every symbolic expression stayed within the
// linear theory during this run.
func (m *Machine) AllLinear() bool { return m.allLinear }

// clearAllLinear clears the all_linear completeness flag (Fig. 1's
// fallback to the concrete value), emitting one FallbackConcrete trace
// event on the transition.
func (m *Machine) clearAllLinear() {
	if !m.allLinear {
		return
	}
	m.allLinear = false
	if m.obs != nil {
		m.obs.Event(obs.Event{Kind: obs.FallbackConcrete, Flag: "all_linear"})
	}
}

// clearAllLocsDefinite clears the all_locs_definite completeness flag
// (an input-dependent dereference), emitting one FallbackConcrete trace
// event on the transition.
func (m *Machine) clearAllLocsDefinite() {
	if !m.allLocsDefinite {
		return
	}
	m.allLocsDefinite = false
	if m.obs != nil {
		m.obs.Event(obs.Event{Kind: obs.FallbackConcrete, Flag: "all_locs_definite"})
	}
}

// AllLocsDefinite reports whether every dereferenced address was
// input-independent during this run.
func (m *Machine) AllLocsDefinite() bool { return m.allLocsDefinite }

// Steps returns the number of executed instructions.
func (m *Machine) Steps() int64 { return m.steps }

// GlobalAddr returns the absolute address of the global region offset.
func (m *Machine) GlobalAddr(off int64) int64 { return m.globalBase + off }

// Mem exposes the concrete memory (used by library implementations).
func (m *Machine) Mem() *mem.M { return m.mem }

// SymAt returns the symbolic value stored for addr, if any.  The taint
// bit is authoritative: entries left in the map for cells whose taint
// bit was cleared (by a concrete overwrite, frame pop, or free) are
// dead.
func (m *Machine) SymAt(addr int64) (*symbolic.Lin, bool) {
	if !m.mem.Tainted(addr) {
		return nil, false
	}
	l, ok := m.sym[addr]
	return l, ok
}

// ShadowEvals returns the number of instruction-level symbolic shadow
// evaluations this run performed.  Under the compiled engine, untainted
// operands skip shadow evaluation entirely, so a fully concrete program
// reports zero.
func (m *Machine) ShadowEvals() int64 { return m.shadowEvals }

// setSym records a live symbolic shadow for addr: the map entry holds
// the value, the taint bit makes it visible.
func (m *Machine) setSym(addr int64, l *symbolic.Lin) {
	m.sym[addr] = l
	m.mem.SetTaint(addr)
}

// clearSym marks addr concrete.  Only the taint bit is cleared; the map
// entry (if any) becomes unreachable and is dropped wholesale on Reset.
func (m *Machine) clearSym(addr int64) {
	m.mem.ClearTaint(addr)
}

// shadowEval is the counted instruction-level entry into evaluate_symbolic.
// It returns a form only when the expression is genuinely input-dependent;
// constant results and shadow-evaluation faults both come back nil, which
// every call site treats as "no live shadow" (exactly how they already
// treated const forms).
func (m *Machine) shadowEval(e ir.Expr, frame int64) *symbolic.Lin {
	m.shadowEvals++
	l, _, _ := m.evalSym(e, frame)
	return l
}

func truncStore(t types.Type, v int64) int64 {
	if b, ok := t.(*types.Basic); ok {
		return types.Truncate(b, v)
	}
	return v
}

// ---------------------------------------------------------------- inputs

// RandomInit initializes the memory at addr as an input of type t named
// key, following Fig. 8: scalars draw random bits (or the value assigned
// by the previous solve), pointers flip a coin between NULL and a fresh
// allocation whose contents are initialized recursively, and structs and
// arrays recurse member-wise.
func (m *Machine) RandomInit(addr int64, t types.Type, key string) error {
	switch t := t.(type) {
	case *types.Basic:
		v := types.Truncate(t, m.inputs.ScalarInput(key, t))
		if err := m.mem.Store(addr, v); err != nil {
			return err
		}
		if sv, ok := m.inputs.VarOf(key, symbolic.ScalarVar, t); ok {
			m.setSym(addr, m.varLin(sv))
		}
		return nil
	case *types.Pointer:
		if sv, ok := m.inputs.VarOf(key, symbolic.PointerVar, nil); ok {
			m.setSym(addr, m.varLin(sv))
		}
		if !m.inputs.PointerInput(key) {
			return m.mem.Store(addr, 0)
		}
		size := t.Elem.Size()
		if size == 0 { // void*: allocate a single opaque cell
			size = 1
		}
		region, err := m.mem.Alloc(size)
		if err != nil {
			return err
		}
		if err := m.mem.Store(addr, region); err != nil {
			return err
		}
		if types.IsVoid(t.Elem) {
			return nil
		}
		return m.RandomInit(region, t.Elem, key+".*")
	case *types.Struct:
		for _, f := range t.Fields {
			if err := m.RandomInit(addr+f.Offset, f.Type, key+"."+f.Name); err != nil {
				return err
			}
		}
		return nil
	case *types.Array:
		for i := int64(0); i < t.Len; i++ {
			k := fmt.Sprintf("%s[%d]", key, i)
			if err := m.RandomInit(addr+i*t.Elem.Size(), t.Elem, k); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("machine: cannot initialize input of type %s", t)
}

// Value is a concrete value with its symbolic shadow (nil when the value
// does not depend on inputs).
type Value struct {
	V   int64
	Sym *symbolic.Lin
}

// ArgValue reads the input cell at addr as a call argument.
func (m *Machine) ArgValue(addr int64) (Value, error) {
	v, tainted, err := m.mem.LoadT(addr)
	if err != nil {
		return Value{}, err
	}
	var sym *symbolic.Lin
	if tainted {
		sym = m.sym[addr]
	}
	return Value{V: v, Sym: sym}, nil
}

// ---------------------------------------------------------------- run

// RunCall invokes the named function with the given arguments and runs it
// to completion.  A nil *RunError means the call returned normally.
func (m *Machine) RunCall(fn string, args []Value) (Value, *RunError) {
	f, ok := m.prog.Lookup(fn)
	if !ok {
		return Value{}, &RunError{Outcome: Crashed, Msg: "no such function " + fn}
	}
	if len(args) != len(f.Params) {
		return Value{}, &RunError{
			Outcome: Crashed,
			Msg:     fmt.Sprintf("%s expects %d arguments, got %d", fn, len(f.Params), len(args)),
		}
	}
	if m.code != nil {
		return m.execCompiled(m.code.funcs[fn], args)
	}
	return m.exec(f, args)
}

// exec runs one function activation.
func (m *Machine) exec(f *ir.Func, args []Value) (Value, *RunError) {
	if m.callDepth >= maxCallDepth {
		return Value{}, &RunError{Outcome: Crashed, Msg: "stack overflow (recursion too deep)"}
	}
	m.callDepth++
	defer func() { m.callDepth-- }()

	frame := m.mem.PushFrame(f.FrameSize)
	// PopFrame clears the frame's taint bits, which kills any symbolic
	// shadows before the addresses are recycled by a later frame (the
	// shadow map entries become unreachable; Reset drops them wholesale).
	defer m.mem.PopFrame(frame, f.FrameSize)

	for i, p := range f.Params {
		addr := frame + p.Slot
		if err := m.mem.Store(addr, truncStore(p.Type, args[i].V)); err != nil {
			return Value{}, m.memErr(err, token.Pos{})
		}
		if args[i].Sym != nil && !args[i].Sym.IsConst() {
			m.setSym(addr, args[i].Sym)
		}
	}

	pc := 0
	for {
		if pc < 0 || pc >= len(f.Code) {
			return Value{}, &RunError{Outcome: Crashed, Msg: fmt.Sprintf("pc %d out of range in %s", pc, f.Name)}
		}
		m.steps++
		if m.steps > m.maxSteps {
			return Value{}, &RunError{Outcome: StepLimit, Msg: "step budget exhausted (possible non-termination)"}
		}
		if m.supervised && m.steps&(interruptStride-1) == 0 {
			if re := m.checkInterrupt(); re != nil {
				return Value{}, re
			}
		}

		switch ins := f.Code[pc].(type) {
		case *ir.Assign:
			if err := m.doAssign(ins, frame); err != nil {
				return Value{}, err
			}
			pc++
		case *ir.IfGoto:
			taken, err := m.doBranch(ins, frame)
			if err != nil {
				return Value{}, err
			}
			if taken {
				pc = ins.Target
			} else {
				pc++
			}
		case *ir.Goto:
			pc = ins.Target
		case *ir.Call:
			if err := m.doCall(ins, frame); err != nil {
				return Value{}, err
			}
			pc++
		case *ir.CallExt:
			if err := m.doCallExt(ins, frame); err != nil {
				return Value{}, err
			}
			pc++
		case *ir.CallLib:
			if err := m.doCallLib(ins, frame); err != nil {
				return Value{}, err
			}
			pc++
		case *ir.Ret:
			if ins.Val == nil {
				return Value{}, nil
			}
			v, err := m.evalConcrete(ins.Val, frame)
			if err != nil {
				return Value{}, m.memErr(err, ins.Pos)
			}
			return Value{V: v, Sym: m.shadowEval(ins.Val, frame)}, nil
		case *ir.Alloc:
			if err := m.doAlloc(ins, frame); err != nil {
				return Value{}, err
			}
			pc++
		case *ir.Free:
			p, err := m.evalConcrete(ins.Ptr, frame)
			if err != nil {
				return Value{}, m.memErr(err, ins.Pos)
			}
			if err := m.mem.Free(p); err != nil {
				return Value{}, m.memErr(err, ins.Pos)
			}
			pc++
		case *ir.Abort:
			return Value{}, &RunError{Outcome: Aborted, Msg: ins.Msg, Pos: ins.Pos}
		case *ir.Halt:
			return Value{}, &RunError{Outcome: HaltOK, Msg: "halt"}
		default:
			return Value{}, &RunError{Outcome: Crashed, Msg: fmt.Sprintf("bad instruction %T", ins)}
		}
	}
}

// interruptStride is how many instructions execute between deadline and
// cancellation polls; a power of two so the check compiles to a mask.
const interruptStride = 1 << 12

// checkInterrupt polls the cancel channel and the wall-clock deadline.
func (m *Machine) checkInterrupt() *RunError {
	if m.cancel != nil {
		select {
		case <-m.cancel:
			return &RunError{Outcome: Interrupted, Msg: "search cancelled"}
		default:
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		return &RunError{Outcome: Interrupted, Msg: "search deadline exceeded"}
	}
	return nil
}

func (m *Machine) memErr(err error, pos token.Pos) *RunError {
	// Errors that are already run errors (e.g. a misprediction raised by
	// the branch hook inside a decision record) pass through unchanged.
	if re, ok := err.(*RunError); ok {
		return re
	}
	return &RunError{Outcome: Crashed, Msg: err.Error(), Pos: pos}
}

// noteDecision emits the synthetic Decision record for a pointer input
// whose value was just read, once per run.  tainted is the loaded
// cell's taint bit: untainted cells carry no live shadow, so they can
// never be a pointer input's home.
func (m *Machine) noteDecision(addr, v int64, tainted bool) error {
	if !m.shapeSearch || !tainted {
		return nil
	}
	l, ok := m.sym[addr]
	if !ok || len(l.Coeffs) != 1 || l.Const != 0 {
		return nil
	}
	var sv symbolic.Var
	var coeff int64
	for v, k := range l.Coeffs {
		sv, coeff = v, k
	}
	if coeff != 1 || !m.inputs.IsPointerVar(sv) || m.decided[sv] {
		return nil
	}
	m.decided[sv] = true
	taken := v != 0
	rel := symbolic.NE
	if !taken {
		rel = symbolic.EQ
	}
	rec := BranchRec{
		Site:     -1,
		Taken:    taken,
		Pred:     symbolic.Pred{L: m.varLin(sv), Rel: rel},
		HasPred:  true,
		Decision: true,
	}
	m.Branches = append(m.Branches, rec)
	if m.onBranch != nil {
		if herr := m.onBranch(rec); herr != nil {
			return &RunError{Outcome: Mispredicted, Msg: herr.Error()}
		}
	}
	return nil
}

func (m *Machine) doAssign(ins *ir.Assign, frame int64) *RunError {
	addr, err := m.evalConcrete(ins.Dst, frame)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	v, err := m.evalConcrete(ins.Src, frame)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	if ins.StoreTy != nil {
		v = types.Truncate(ins.StoreTy, v)
	}
	// S := S + [m -> evaluate_symbolic(e, M, S)]  (Fig. 3); constants are
	// removed from S rather than stored, keeping S the set of
	// input-dependent locations.
	sym := m.shadowEval(ins.Src, frame)
	if err := m.mem.Store(addr, v); err != nil {
		return m.memErr(err, ins.Pos)
	}
	if sym != nil && !sym.IsConst() {
		m.setSym(addr, sym)
	} else {
		m.clearSym(addr)
	}
	return nil
}

func (m *Machine) doAlloc(ins *ir.Alloc, frame int64) *RunError {
	size, err := m.evalConcrete(ins.Size, frame)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	if size < 0 {
		return &RunError{Outcome: Crashed, Msg: fmt.Sprintf("malloc with negative size %d", size), Pos: ins.Pos}
	}
	region, err := m.mem.Alloc(size)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	addr, err := m.evalConcrete(ins.Dst, frame)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	if err := m.mem.Store(addr, region); err != nil {
		return m.memErr(err, ins.Pos)
	}
	m.clearSym(addr)
	return nil
}

func (m *Machine) doCall(ins *ir.Call, frame int64) *RunError {
	f, ok := m.prog.Lookup(ins.Fn)
	if !ok {
		return &RunError{Outcome: Crashed, Msg: "no such function " + ins.Fn, Pos: ins.Pos}
	}
	args := make([]Value, len(ins.Args))
	for i, a := range ins.Args {
		v, err := m.evalConcrete(a, frame)
		if err != nil {
			return m.memErr(err, ins.Pos)
		}
		args[i] = Value{V: v, Sym: m.shadowEval(a, frame)}
	}
	// The destination is a caller-frame temporary; resolve it before the
	// callee's frame is live.
	var dstAddr int64
	if ins.Dst != nil {
		var err error
		dstAddr, err = m.evalConcrete(ins.Dst, frame)
		if err != nil {
			return m.memErr(err, ins.Pos)
		}
	}
	ret, rerr := m.exec(f, args)
	if rerr != nil {
		return rerr
	}
	if ins.Dst != nil {
		if err := m.mem.Store(dstAddr, ret.V); err != nil {
			return m.memErr(err, ins.Pos)
		}
		if ret.Sym != nil && !ret.Sym.IsConst() {
			m.setSym(dstAddr, ret.Sym)
		} else {
			m.clearSym(dstAddr)
		}
	}
	return nil
}

// doCallExt simulates an external function: its return value is a fresh
// environment input (Sec. 3.2's simulated external functions).
func (m *Machine) doCallExt(ins *ir.CallExt, frame int64) *RunError {
	n := m.extCounts[ins.Fn]
	m.extCounts[ins.Fn] = n + 1
	if ins.Dst == nil || types.IsVoid(ins.Result) {
		return nil
	}
	addr, err := m.evalConcrete(ins.Dst, frame)
	if err != nil {
		return m.memErr(err, ins.Pos)
	}
	key := fmt.Sprintf("ext:%s#%d", ins.Fn, n)
	if err := m.RandomInit(addr, ins.Result, key); err != nil {
		return m.memErr(err, ins.Pos)
	}
	return nil
}

func (m *Machine) doCallLib(ins *ir.CallLib, frame int64) *RunError {
	impl, ok := m.libs[ins.Fn]
	if !ok {
		return &RunError{Outcome: Crashed, Msg: "library function " + ins.Fn + " has no implementation", Pos: ins.Pos}
	}
	args := make([]int64, len(ins.Args))
	anySymbolic := false
	for i, a := range ins.Args {
		v, err := m.evalConcrete(a, frame)
		if err != nil {
			return m.memErr(err, ins.Pos)
		}
		args[i] = v
		if s := m.shadowEval(a, frame); s != nil && !s.IsConst() {
			anySymbolic = true
		}
	}
	// A black box fed input-dependent values takes the analysis outside
	// the theory: fall back to concrete and clear the completeness flag.
	if anySymbolic {
		m.clearAllLinear()
	}
	ret, err := impl(m, args)
	if err != nil {
		return &RunError{Outcome: Crashed, Msg: err.Error(), Pos: ins.Pos}
	}
	if ins.Dst != nil {
		addr, cerr := m.evalConcrete(ins.Dst, frame)
		if cerr != nil {
			return m.memErr(cerr, ins.Pos)
		}
		if serr := m.mem.Store(addr, ret); serr != nil {
			return m.memErr(serr, ins.Pos)
		}
		m.clearSym(addr)
	}
	return nil
}

// doBranch executes a conditional: concrete decision, symbolic predicate
// extraction, branch record, and hook dispatch.
func (m *Machine) doBranch(ins *ir.IfGoto, frame int64) (bool, *RunError) {
	cv, err := m.evalConcrete(ins.Cond, frame)
	if err != nil {
		return false, m.memErr(err, ins.Pos)
	}
	taken := cv != 0
	m.shadowEvals++
	pred, hasPred, fallback := m.branchPred(ins.Cond, frame, taken)
	rec := BranchRec{Site: ins.Site, Taken: taken, Pred: pred, HasPred: hasPred, Fallback: fallback, Pos: ins.Pos}
	m.Branches = append(m.Branches, rec)
	if m.onBranch != nil {
		if herr := m.onBranch(rec); herr != nil {
			return false, &RunError{Outcome: Mispredicted, Msg: herr.Error(), Pos: ins.Pos}
		}
	}
	return taken, nil
}

// branchPred derives the path-constraint predicate for a condition under
// the branch actually taken.  It returns hasPred=false when the condition
// does not depend on inputs (constant) or fell outside the theory, with
// the BranchRec.Fallback classification as the third result.
func (m *Machine) branchPred(cond ir.Expr, frame int64, taken bool) (symbolic.Pred, bool, string) {
	switch c := cond.(type) {
	case *ir.Un:
		if c.Op == ir.Not {
			return m.branchPred(c.A, frame, !taken)
		}
	case *ir.Bin:
		if c.Op.IsComparison() {
			linBefore, locBefore := m.allLinear, m.allLocsDefinite
			la, ka, fa := m.evalSym(c.A, frame)
			lb, kb, fb := m.evalSym(c.B, frame)
			if fa || fb {
				return symbolic.Pred{}, false, m.fallbackKind()
			}
			if la == nil && lb == nil {
				return symbolic.Pred{}, false, m.constFallback(linBefore, locBefore)
			}
			if la == nil {
				la = m.lins.NewConst(ka)
			}
			if lb == nil {
				lb = m.lins.NewConst(kb)
			}
			diff := m.lins.Sub(la, lb)
			if diff == nil {
				m.clearAllLinear()
				return symbolic.Pred{}, false, FallbackNonlinear
			}
			rel := relOf(c.Op)
			p := symbolic.Pred{L: diff, Rel: rel}
			if !taken {
				p = p.Negate()
			}
			return p, true, ""
		}
	}
	linBefore, locBefore := m.allLinear, m.allLocsDefinite
	l, _, fault := m.evalSym(cond, frame)
	if fault {
		return symbolic.Pred{}, false, m.fallbackKind()
	}
	if l == nil {
		return symbolic.Pred{}, false, m.constFallback(linBefore, locBefore)
	}
	p := symbolic.Pred{L: l, Rel: symbolic.NE}
	if !taken {
		p = symbolic.Pred{L: l, Rel: symbolic.EQ}
	}
	return p, true, ""
}

// BranchRec.Fallback values.
const (
	FallbackNonlinear = "nonlinear"
	FallbackPointer   = "pointer"
	FallbackConcrete  = "concrete"
)

// fallbackKind classifies an untracked condition value: when a
// completeness flag is already down, the regime the run left is the
// best available attribution; with both flags up the value simply
// never depended on inputs.
func (m *Machine) fallbackKind() string {
	switch {
	case !m.allLocsDefinite:
		return FallbackPointer
	case !m.allLinear:
		return FallbackNonlinear
	default:
		return FallbackConcrete
	}
}

// constFallback classifies a condition whose sides all evaluated to
// constants.  Falling outside the theory replaces a symbolic value with
// its concrete one (Fig. 1's simplification), so constness after a flag
// dropped DURING this condition's own evaluation is the fallback's
// artifact, not input-independence — attribute it to the regime that
// was just left.  Constness with no in-condition transition is honestly
// concrete.
func (m *Machine) constFallback(linBefore, locBefore bool) string {
	switch {
	case locBefore && !m.allLocsDefinite:
		return FallbackPointer
	case linBefore && !m.allLinear:
		return FallbackNonlinear
	default:
		return FallbackConcrete
	}
}

func relOf(op ir.Op) symbolic.Rel {
	switch op {
	case ir.Eq:
		return symbolic.EQ
	case ir.Ne:
		return symbolic.NE
	case ir.Lt:
		return symbolic.LT
	case ir.Le:
		return symbolic.LE
	case ir.Gt:
		return symbolic.GT
	case ir.Ge:
		return symbolic.GE
	}
	panic("machine: not a comparison: " + op.String())
}
