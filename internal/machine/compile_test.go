package machine

import (
	"reflect"
	"strings"
	"testing"

	"dart/internal/symbolic"
)

// twoEngines builds a compiled machine and a reference interpreter
// over the same program with independent (but identically seeded)
// input sources.
func twoEngines(t *testing.T, src string) (compiled, interp *Machine) {
	t.Helper()
	prog := compile(t, src)
	var err error
	compiled, err = New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(), Code: Compile(prog)})
	if err != nil {
		t.Fatal(err)
	}
	interp, err = New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls()})
	if err != nil {
		t.Fatal(err)
	}
	return compiled, interp
}

// TestNarrowStoreParity is the regression test for the truncStore
// suspect: a store into a narrow (char) cell must truncate and
// sign-extend identically in the compiled engine and the interpreter,
// including when the overflowing value feeds a branch.  A compiled
// Assign that skipped the StoreTy truncation would leave c == 200
// here, flip the branch, and diverge on return value, branch record,
// and step count at once.
func TestNarrowStoreParity(t *testing.T) {
	src := `
int widen(int a) {
    char c = a;
    c = c + 100;
    if (c < 0) return c;
    return c + 1000;
}
`
	for _, a := range []int64{0, 100, 127, -128, 255} {
		cm, im := twoEngines(t, src)
		cv, cerr := cm.RunCall("widen", []Value{{V: a}})
		iv, ierr := im.RunCall("widen", []Value{{V: a}})
		if (cerr == nil) != (ierr == nil) {
			t.Fatalf("a=%d: error divergence: compiled=%v interp=%v", a, cerr, ierr)
		}
		if cv.V != iv.V {
			t.Errorf("a=%d: compiled=%d interp=%d", a, cv.V, iv.V)
		}
		if cm.Steps() != im.Steps() {
			t.Errorf("a=%d: steps compiled=%d interp=%d", a, cm.Steps(), im.Steps())
		}
		if !reflect.DeepEqual(cm.Branches, im.Branches) {
			t.Errorf("a=%d: branch records diverge:\ncompiled: %+v\ninterp:   %+v", a, cm.Branches, im.Branches)
		}
	}
	// The interesting case really does overflow: char(100)+100 wraps
	// negative, so the taken branch must be the c < 0 arm.
	cm, _ := twoEngines(t, src)
	v, rerr := cm.RunCall("widen", []Value{{V: 100}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if v.V != -56 {
		t.Errorf("widen(100) = %d, want -56 (narrow store must wrap)", v.V)
	}
}

// TestResetClearsStepCounter is the regression test for the
// checkInterrupt suspect: the amortized step counter must restart
// from zero when a pooled machine is Reset, or the second run
// inherits the first run's consumed budget (and its interrupt-poll
// phase).  Without the reset, the clean second run here would trip
// StepLimit immediately.
func TestResetClearsStepCounter(t *testing.T) {
	src := `
int spin(int n) {
    int s = 0;
    while (n > 0) { s = s + n; n = n - 1; }
    return s;
}
`
	prog := compile(t, src)
	m, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(),
		Code: Compile(prog), MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := m.RunCall("spin", []Value{{V: 100000}})
	if rerr == nil || rerr.Outcome != StepLimit {
		t.Fatalf("first run: got %v, want StepLimit", rerr)
	}
	if err := m.Reset(newFixedSource()); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != 0 {
		t.Fatalf("Steps() = %d after Reset, want 0", m.Steps())
	}
	v, rerr := m.RunCall("spin", []Value{{V: 10}})
	if rerr != nil {
		t.Fatalf("second run after Reset: %v (step counter leaked across Reset?)", rerr)
	}
	if v.V != 55 {
		t.Errorf("spin(10) = %d, want 55", v.V)
	}

	// The pooled machine's step count for a given run must equal a
	// fresh machine's: interrupt polling is keyed to steps, so replay
	// determinism depends on this.
	fresh, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(),
		Code: Compile(prog), MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := fresh.RunCall("spin", []Value{{V: 10}}); rerr != nil {
		t.Fatal(rerr)
	}
	if m.Steps() != fresh.Steps() {
		t.Errorf("pooled run steps = %d, fresh run steps = %d", m.Steps(), fresh.Steps())
	}
}

// TestResetAfterPoisonedRun checks that a run that dies mid-frame —
// nested calls live, heap allocated, locals tainted — leaves the
// pooled machine fully reusable: after Reset, a clean run must match
// a fresh machine bit for bit (value, steps, branch records, shadow
// work).
func TestResetAfterPoisonedRun(t *testing.T) {
	src := `
int inner(int x) {
    int *p = malloc(8);
    *p = x;
    if (x == 0) {
        int *q = 0;
        return *q;
    }
    free(p);
    return x * 2;
}
int outer(int x) {
    int y = inner(x);
    if (y > 4) return y + 1;
    return y;
}
`
	prog := compile(t, src)
	pooled, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(), Code: Compile(prog)})
	if err != nil {
		t.Fatal(err)
	}
	// Poison: tainted argument steers into the null deref, dying with
	// two frames pushed, an unfreed heap block, and live taint bits.
	poison := []Value{{V: 0, Sym: symbolic.NewVar(symbolic.Var(0))}}
	if _, rerr := pooled.RunCall("outer", poison); rerr == nil || rerr.Outcome != Crashed {
		t.Fatalf("poisoned run: got %v, want Crashed", rerr)
	}
	if err := pooled.Reset(newFixedSource()); err != nil {
		t.Fatal(err)
	}

	clean := []Value{{V: 7, Sym: symbolic.NewVar(symbolic.Var(0))}}
	pv, prerr := pooled.RunCall("outer", clean)
	fresh, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(), Code: Compile(prog)})
	if err != nil {
		t.Fatal(err)
	}
	fv, frerr := fresh.RunCall("outer", clean)
	if prerr != nil || frerr != nil {
		t.Fatalf("clean runs errored: pooled=%v fresh=%v", prerr, frerr)
	}
	if pv.V != fv.V || pv.V != 15 {
		t.Errorf("pooled=%d fresh=%d, want 15", pv.V, fv.V)
	}
	if pooled.Steps() != fresh.Steps() {
		t.Errorf("steps: pooled=%d fresh=%d", pooled.Steps(), fresh.Steps())
	}
	if pooled.ShadowEvals() != fresh.ShadowEvals() {
		t.Errorf("shadow evals: pooled=%d fresh=%d", pooled.ShadowEvals(), fresh.ShadowEvals())
	}
	if !reflect.DeepEqual(pooled.Branches, fresh.Branches) {
		t.Errorf("branch records diverge:\npooled: %+v\nfresh:  %+v", pooled.Branches, fresh.Branches)
	}
	if pooled.AllLinear() != fresh.AllLinear() || pooled.AllLocsDefinite() != fresh.AllLocsDefinite() {
		t.Errorf("completeness flags diverge after poisoned run")
	}
}

// TestBranchSnapshotDetachedFromPool pins the copy-out discipline the
// search relies on: a consumer that snapshots Branches (as the
// concolic engine does when recording a run) must keep an intact copy
// even though Reset truncates to Branches[:0] and the next run
// overwrites the same backing array.
func TestBranchSnapshotDetachedFromPool(t *testing.T) {
	src := `
int pick(int a) {
    if (a > 5) return 1;
    return 0;
}
`
	prog := compile(t, src)
	m, err := New(Config{Prog: prog, Inputs: newFixedSource(), LibImpls: StdLibImpls(), Code: Compile(prog)})
	if err != nil {
		t.Fatal(err)
	}
	arg := func(v int64) []Value { return []Value{{V: v, Sym: symbolic.NewVar(symbolic.Var(0))}} }
	if _, rerr := m.RunCall("pick", arg(9)); rerr != nil {
		t.Fatal(rerr)
	}
	snap := append([]BranchRec(nil), m.Branches...)
	want := append([]BranchRec(nil), m.Branches...)
	if len(snap) == 0 || !snap[0].Taken {
		t.Fatalf("expected a taken branch record, got %+v", snap)
	}
	if err := m.Reset(newFixedSource()); err != nil {
		t.Fatal(err)
	}
	if _, rerr := m.RunCall("pick", arg(1)); rerr != nil {
		t.Fatal(rerr)
	}
	if len(m.Branches) == 0 || m.Branches[0].Taken {
		t.Fatalf("second run should record a not-taken branch, got %+v", m.Branches)
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("snapshot mutated by pooled reuse:\ngot:  %+v\nwant: %+v", snap, want)
	}
}

// TestConcreteRunSkipsShadow pins the taint bitmap's payoff: a run
// whose inputs are fully concrete (no symbolic argument, no tainted
// cell) performs zero shadow evaluations in the compiled engine,
// while the reference interpreter — which evaluates the shadow
// unconditionally — performs many on the same program.
func TestConcreteRunSkipsShadow(t *testing.T) {
	src := `
int churn(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        if (i % 2 == 0) s = s + i;
        else s = s - 1;
        i = i + 1;
    }
    return s;
}
`
	cm, im := twoEngines(t, src)
	cv, rerr := cm.RunCall("churn", []Value{{V: 50}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	iv, rerr := im.RunCall("churn", []Value{{V: 50}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if cv.V != iv.V {
		t.Fatalf("value divergence: compiled=%d interp=%d", cv.V, iv.V)
	}
	if n := cm.ShadowEvals(); n != 0 {
		t.Errorf("compiled engine recorded %d shadow evals on a concrete run, want 0", n)
	}
	if n := im.ShadowEvals(); n == 0 {
		t.Errorf("interpreter recorded 0 shadow evals; counter broken")
	}

	// With a tainted argument the compiled engine must pay for the
	// shadow again — and pay exactly as much as the interpreter,
	// since every instruction now touches tainted data.
	cm2, im2 := twoEngines(t, src)
	targ := []Value{{V: 50, Sym: symbolic.NewVar(symbolic.Var(0))}}
	if _, rerr := cm2.RunCall("churn", targ); rerr != nil {
		t.Fatal(rerr)
	}
	if _, rerr := im2.RunCall("churn", targ); rerr != nil {
		t.Fatal(rerr)
	}
	if cm2.ShadowEvals() == 0 {
		t.Errorf("compiled engine skipped shadow on a tainted run")
	}
	if !reflect.DeepEqual(cm2.Branches, im2.Branches) {
		t.Errorf("tainted branch records diverge")
	}
}

// TestCompiledErrorMessagesMatchInterp spot-checks that compile-time
// interception of bad instructions (negative branch targets would
// collide with the return sentinel) preserves the interpreter's
// crash vocabulary for runtime faults.
func TestCompiledErrorMessagesMatchInterp(t *testing.T) {
	src := `
int boom(int a) {
    int *p = 0;
    return *p + a;
}
`
	cm, im := twoEngines(t, src)
	_, cerr := cm.RunCall("boom", []Value{{V: 1}})
	_, ierr := im.RunCall("boom", []Value{{V: 1}})
	if cerr == nil || ierr == nil {
		t.Fatalf("expected crashes, got compiled=%v interp=%v", cerr, ierr)
	}
	if cerr.Outcome != ierr.Outcome || cerr.Msg != ierr.Msg || cerr.Pos != ierr.Pos {
		t.Errorf("crash divergence:\ncompiled: %+v\ninterp:   %+v", cerr, ierr)
	}
	if !strings.Contains(cerr.Msg, "NULL pointer") {
		t.Errorf("crash message %q lost the NULL pointer vocabulary", cerr.Msg)
	}
}
