package machine

import (
	"errors"

	"dart/internal/types"
)

// AllocaLimit is the simulated stack-space limit for the alloca library
// function, standing in for the ~2.5 MB cygwin stack bound behind the
// oSIP parser vulnerability of Sec. 4.3 (sizes are in cells here).
const AllocaLimit = 1 << 16

// StdLibSigs returns the type signatures of the standard library
// functions available to MiniC programs.  They are the paper's "library
// functions": deterministic black boxes the tool executes but does not
// analyze.
func StdLibSigs() map[string]*types.Func {
	charPtr := &types.Pointer{Elem: types.CharType}
	i := types.IntType
	return map[string]*types.Func{
		"abs": {Params: []types.Type{i}, Result: i},
		"min": {Params: []types.Type{i, i}, Result: i},
		"max": {Params: []types.Type{i, i}, Result: i},
		// mix is a non-linear combiner (an opaque checksum) used by the
		// examples that exercise DART's black-box graceful degradation.
		"mix": {Params: []types.Type{i, i}, Result: i},
		// cube computes x*x*x, the paper's example of a non-linear test
		// hidden behind a library call (Sec. 2.5).
		"cube": {Params: []types.Type{i}, Result: i},
		// alloca models bounded stack allocation: NULL on failure, which
		// oSIP famously did not check.
		"alloca": {Params: []types.Type{i}, Result: charPtr},
		"memset": {Params: []types.Type{charPtr, i, i}, Result: charPtr},
		"memcpy": {Params: []types.Type{charPtr, charPtr, i}, Result: charPtr},
		"strlen": {Params: []types.Type{charPtr}, Result: i},
		"strcmp": {Params: []types.Type{charPtr, charPtr}, Result: i},
	}
}

// StdLibImpls returns the implementations matching StdLibSigs.
func StdLibImpls() map[string]LibImpl {
	return map[string]LibImpl{
		"abs": func(_ *Machine, a []int64) (int64, error) {
			if a[0] < 0 {
				return -a[0], nil
			}
			return a[0], nil
		},
		"min": func(_ *Machine, a []int64) (int64, error) {
			if a[0] < a[1] {
				return a[0], nil
			}
			return a[1], nil
		},
		"max": func(_ *Machine, a []int64) (int64, error) {
			if a[0] > a[1] {
				return a[0], nil
			}
			return a[1], nil
		},
		"mix": func(_ *Machine, a []int64) (int64, error) {
			x := uint64(a[0])*0x9E3779B9 + uint64(a[1])*0x85EBCA6B
			x ^= x >> 16
			return int64(int32(x)), nil
		},
		"cube": func(_ *Machine, a []int64) (int64, error) {
			x := int64(int32(a[0]))
			return int64(int32(x * x * x)), nil
		},
		"alloca": func(m *Machine, a []int64) (int64, error) {
			n := a[0]
			if n <= 0 || n > AllocaLimit {
				return 0, nil // allocation failure: NULL, no error
			}
			base, err := m.Mem().Alloc(n)
			if err != nil {
				return 0, nil
			}
			return base, nil
		},
		"memset": func(m *Machine, a []int64) (int64, error) {
			dst, v, n := a[0], a[1], a[2]
			for i := int64(0); i < n; i++ {
				if err := m.Mem().Store(dst+i, int64(int8(v))); err != nil {
					return 0, err
				}
			}
			return dst, nil
		},
		"memcpy": func(m *Machine, a []int64) (int64, error) {
			dst, src, n := a[0], a[1], a[2]
			for i := int64(0); i < n; i++ {
				v, err := m.Mem().Load(src + i)
				if err != nil {
					return 0, err
				}
				if err := m.Mem().Store(dst+i, v); err != nil {
					return 0, err
				}
			}
			return dst, nil
		},
		"strlen": func(m *Machine, a []int64) (int64, error) {
			p := a[0]
			for n := int64(0); ; n++ {
				v, err := m.Mem().Load(p + n)
				if err != nil {
					return 0, err
				}
				if v == 0 {
					return n, nil
				}
				if n > 1<<22 {
					return 0, errors.New("strlen: unterminated string")
				}
			}
		},
		"strcmp": func(m *Machine, a []int64) (int64, error) {
			p, q := a[0], a[1]
			for i := int64(0); ; i++ {
				x, err := m.Mem().Load(p + i)
				if err != nil {
					return 0, err
				}
				y, err := m.Mem().Load(q + i)
				if err != nil {
					return 0, err
				}
				if x != y {
					if x < y {
						return -1, nil
					}
					return 1, nil
				}
				if x == 0 {
					return 0, nil
				}
			}
		},
	}
}
