// The coverage explainer: per-branch-site "why not covered" accounting.
//
// A search that ends at 83% branch coverage owes an answer for the
// other 17%.  The explainer collects, per branch site and per branch
// direction, every terminal fate a flip attempt met — solver-proven
// infeasible, solver budget exhausted, theory fallback at the branch,
// frontier truncation, depth cap, post-solve divergence — and resolves
// each uncovered direction to exactly one reason at presentation time
// (Resolve), so covered + every reason bucket always accounts for 100%
// of the program's branch directions.  No silent "unknown" bucket: a
// reached direction with no recorded cause is honestly "not-attempted"
// (the search stopped with the flip still pending), and a direction
// whose site no run ever touched is "never-reached".
//
// Like the cost profiler (profile.go) the collector follows the
// nil-receiver no-op discipline and is single-goroutine; cross-worker
// aggregation merges snapshots.  Determinism contract (the PR 5/PR 7
// two-plane split): the cause ledger is an exact function of the seed
// on tree-exhausting searches — byte-identical at -workers 1/2/8 —
// while the run-indexed Timeline is honest schedule texture (which run
// finished k-th depends on the schedule) and is excluded from
// byte-comparisons.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Terminal reasons an uncovered branch direction can carry.  The first
// eight are the ledger's recorded causes; the last two are resolution
// fallbacks that keep the accounting total (they are named buckets,
// never a silent remainder).
const (
	// ReasonNeverReached: no run's path ever executed the branch site,
	// so neither direction was observed — the directed search never
	// built a path constraint reaching it (a frontier gap).
	ReasonNeverReached = "never-reached"
	// ReasonSolverUnsat: every concluded flip attempt at this direction
	// was proven infeasible (Fig. 5's infeasible path constraint); the
	// recorded unsat slice shows one such proof.
	ReasonSolverUnsat = "solver-unsat"
	// ReasonSolverBudget: a flip attempt exhausted the solver's work
	// budget — feasibility undecided, completeness honestly lost.
	ReasonSolverBudget = "solver-budget"
	// ReasonNonlinearFallback: the branch condition left the linear
	// theory (all_linear cleared at this site), so its predicate could
	// not be negated (Sec. 2.5 / Theorem 1 regime boundary).
	ReasonNonlinearFallback = "nonlinear-fallback"
	// ReasonPointerFallback: the branch condition depended on memory
	// whose location was not definite (all_locs_definite cleared at
	// this site); the flip was abandoned.
	ReasonPointerFallback = "pointer-fallback"
	// ReasonFrontierDropped: a pending flip targeting this direction
	// was truncated on MaxFrontier overflow — an abandoned subtree.
	ReasonFrontierDropped = "frontier-dropped"
	// ReasonDepthLimit: the flip sat beyond the configured branch-depth
	// cap and was never attempted.
	ReasonDepthLimit = "depth-limit"
	// ReasonMispredict: the flip solved sat, but the resulting run
	// diverged from the predicted path before reaching the site
	// (Fig. 4's cleared forcing_ok).
	ReasonMispredict = "mispredict-diverged"
	// ReasonConcreteCond: the branch condition was concrete (no input
	// dependence) on every observed path, so there is no predicate to
	// flip.
	ReasonConcreteCond = "concrete-cond"
	// ReasonNotAttempted: the site was reached and the flip was still
	// pending when the search stopped short of exhaustion (run budget,
	// deadline, first-bug stop).
	ReasonNotAttempted = "not-attempted"
)

// ReasonPrecedence orders the reasons from most to least load-bearing:
// an uncovered direction with several recorded causes resolves to the
// earliest one here.  Search-gave-up causes (divergence, truncation,
// depth cap, theory fallbacks) outrank solver verdicts, because a
// direction the search abandoned might still be coverable — only when
// nothing interfered may "every attempt was unsat" stand as the
// verdict.  The two resolution fallbacks close the list.
var ReasonPrecedence = []string{
	ReasonMispredict,
	ReasonFrontierDropped,
	ReasonDepthLimit,
	ReasonPointerFallback,
	ReasonNonlinearFallback,
	ReasonSolverBudget,
	ReasonSolverUnsat,
	ReasonConcreteCond,
	ReasonNotAttempted,
	ReasonNeverReached,
}

// DirCause is the raw tally of terminal fates recorded against one
// branch direction of one site.  All counters are deterministic
// functions of the seed on tree-exhausting searches.
type DirCause struct {
	// Attempts counts solver calls targeting this direction (every
	// verdict, sat included).
	Attempts int64 `json:"attempts,omitempty"`
	// Unsat / Budget split the non-sat verdicts.
	Unsat  int64 `json:"unsat,omitempty"`
	Budget int64 `json:"budget,omitempty"`
	// Mispredicts counts sat flips whose run diverged before the site.
	Mispredicts int64 `json:"mispredicts,omitempty"`
	// Dropped counts pending flips truncated on frontier overflow.
	Dropped int64 `json:"dropped,omitempty"`
	// DepthLimit counts flips skipped beyond the branch-depth cap.
	DepthLimit int64 `json:"depth_limit,omitempty"`
	// Nonlinear / Pointer / Concrete count branch occurrences whose
	// condition carried no flippable predicate, split by why.
	Nonlinear int64 `json:"nonlinear,omitempty"`
	Pointer   int64 `json:"pointer,omitempty"`
	Concrete  int64 `json:"concrete,omitempty"`
	// UnsatSlice is one infeasibility proof: the lexicographically
	// smallest rendering of an unsat path-constraint slice recorded at
	// this direction (min-lex keeps the pick schedule-independent).
	UnsatSlice string `json:"unsat_slice,omitempty"`
}

func (d *DirCause) merge(o *DirCause) {
	d.Attempts += o.Attempts
	d.Unsat += o.Unsat
	d.Budget += o.Budget
	d.Mispredicts += o.Mispredicts
	d.Dropped += o.Dropped
	d.DepthLimit += o.DepthLimit
	d.Nonlinear += o.Nonlinear
	d.Pointer += o.Pointer
	d.Concrete += o.Concrete
	if o.UnsatSlice != "" && (d.UnsatSlice == "" || o.UnsatSlice < d.UnsatSlice) {
		d.UnsatSlice = o.UnsatSlice
	}
}

// empty reports whether no cause was ever recorded.
func (d *DirCause) empty() bool {
	return d.Attempts == 0 && d.Mispredicts == 0 && d.Dropped == 0 &&
		d.DepthLimit == 0 && d.Nonlinear == 0 && d.Pointer == 0 && d.Concrete == 0
}

// SiteCause is the raw ledger entry for one branch site: the cause
// tallies of both directions.  Site is the machine's global branch-site
// index; Pos its source position.
type SiteCause struct {
	Site     int      `json:"site"`
	Pos      string   `json:"pos,omitempty"`
	Taken    DirCause `json:"taken"`
	NotTaken DirCause `json:"not_taken"`
}

func (s *SiteCause) dir(taken bool) *DirCause {
	if taken {
		return &s.Taken
	}
	return &s.NotTaken
}

// Explain is one worker's cause collector.  Like *Profile, a nil
// *Explain is a valid no-op collector — every method nil-checks — and
// an Explain is owned by a single goroutine; workers aggregate by
// merging snapshots.
type Explain struct {
	worker int
	sites  map[int]*SiteCause
}

// NewExplain returns an empty collector for one worker.
func NewExplain(worker int) *Explain {
	return &Explain{worker: worker, sites: make(map[int]*SiteCause)}
}

func (e *Explain) site(site int, pos string) *SiteCause {
	s := e.sites[site]
	if s == nil {
		s = &SiteCause{Site: site, Pos: pos}
		e.sites[site] = s
	} else if s.Pos == "" {
		s.Pos = pos
	}
	return s
}

// RecordSolve records one concluded flip attempt targeting the given
// direction: every verdict counts an attempt; "unsat" and
// "budget-exhausted" are tallied as terminal causes, and an unsat
// verdict may carry the rendered slice that proved infeasibility
// (min-lex kept).  No-op on nil.
func (e *Explain) RecordSolve(site int, pos string, taken bool, verdict, unsatSlice string) {
	if e == nil {
		return
	}
	d := e.site(site, pos).dir(taken)
	d.Attempts++
	switch verdict {
	case "unsat":
		d.Unsat++
		if unsatSlice != "" && (d.UnsatSlice == "" || unsatSlice < d.UnsatSlice) {
			d.UnsatSlice = unsatSlice
		}
	case "budget-exhausted":
		d.Budget++
	}
}

// RecordFallback records a branch occurrence whose condition carried no
// flippable predicate; taken is the direction the flip would have
// targeted, kind one of "nonlinear", "pointer", "concrete".  No-op on
// nil.
func (e *Explain) RecordFallback(site int, pos string, taken bool, kind string) {
	if e == nil {
		return
	}
	d := e.site(site, pos).dir(taken)
	switch kind {
	case "nonlinear":
		d.Nonlinear++
	case "pointer":
		d.Pointer++
	default:
		d.Concrete++
	}
}

// RecordMispredict records a sat flip whose run diverged before
// reaching the target site.  No-op on nil.
func (e *Explain) RecordMispredict(site int, pos string, taken bool) {
	if e == nil {
		return
	}
	e.site(site, pos).dir(taken).Mispredicts++
}

// RecordDropped records a pending flip truncated on frontier overflow.
// No-op on nil.
func (e *Explain) RecordDropped(site int, pos string, taken bool) {
	if e == nil {
		return
	}
	e.site(site, pos).dir(taken).Dropped++
}

// RecordDepthLimit records a flip skipped beyond the branch-depth cap.
// No-op on nil.
func (e *Explain) RecordDepthLimit(site int, pos string, taken bool) {
	if e == nil {
		return
	}
	e.site(site, pos).dir(taken).DepthLimit++
}

// Snapshot freezes the collector into mergeable plain data, sorted by
// site index.  Nil receivers yield nil.
func (e *Explain) Snapshot() *ExplainSnapshot {
	if e == nil {
		return nil
	}
	snap := &ExplainSnapshot{Workers: 1}
	for _, s := range e.sites {
		snap.Sites = append(snap.Sites, *s)
	}
	snap.sort()
	return snap
}

// ExplainSnapshot is an immutable, mergeable cause ledger plus the
// search's run-indexed timeline.  The Sites ledger is the deterministic
// plane; Timeline and Stalls are honest schedule texture — a parallel
// search's k-th completed run depends on the schedule — and are
// excluded from cross-worker byte comparisons (and from merges:
// timelines are per-search, so Merge sums Stalls but never splices
// Timeline rings together).
type ExplainSnapshot struct {
	// Workers is the number of per-worker ledgers merged in.
	Workers int         `json:"workers,omitempty"`
	Sites   []SiteCause `json:"sites,omitempty"`
	// Timeline is the search's coverage-progress ring (per-search only;
	// dropped by Merge).
	Timeline []TimelineSample `json:"timeline,omitempty"`
	// Stalls counts plateau events the stall detector fired.
	Stalls int64 `json:"stalls,omitempty"`
}

func (s *ExplainSnapshot) sort() {
	sort.Slice(s.Sites, func(i, j int) bool { return s.Sites[i].Site < s.Sites[j].Site })
}

// Merge folds o's ledger into s, summing causes by site index — the
// explainer analog of the PR 5 report merge, so a parallel (or
// whole-audit) ledger is the same bag of tallies no matter how the
// work was divided.  o's Timeline is per-search data and is not
// merged; Stalls are summed.  A nil o is a no-op.
func (s *ExplainSnapshot) Merge(o *ExplainSnapshot) {
	if o == nil {
		return
	}
	s.Workers += o.Workers
	s.Stalls += o.Stalls
	// The map holds indices, never pointers: appending to s.Sites may
	// reallocate its backing array, and a stale pointer would silently
	// drop every later update to an already-known site.
	sites := make(map[int]int, len(s.Sites))
	for i := range s.Sites {
		sites[s.Sites[i].Site] = i
	}
	for _, o := range o.Sites {
		i, ok := sites[o.Site]
		if !ok {
			sites[o.Site] = len(s.Sites)
			s.Sites = append(s.Sites, o)
			continue
		}
		dst := &s.Sites[i]
		if dst.Pos == "" {
			dst.Pos = o.Pos
		}
		dst.Taken.merge(&o.Taken)
		dst.NotTaken.merge(&o.NotTaken)
	}
	s.sort()
}

// ExplainSiteRef locates one branch site of the program under test for
// resolution: the site universe, independent of what the search
// touched.  Fn is the function containing the site.
type ExplainSiteRef struct {
	Site int
	Fn   string
	Pos  string
}

// DirOutcome is one branch direction's resolved verdict: covered, or
// exactly one terminal reason.  Deliberately verdict-only: raw attempt
// tallies live in the ledger snapshot, because how many times a flip
// was attempted depends on the engine's path enumeration (classic
// stack vs frontier), while WHICH terminal state each direction ends
// in does not — the resolved report is the byte-comparable plane.
type DirOutcome struct {
	Covered bool   `json:"covered"`
	Reason  string `json:"reason,omitempty"`
	// UnsatSlice carries the infeasibility proof when Reason is
	// solver-unsat and one was recorded.
	UnsatSlice string `json:"unsat_slice,omitempty"`
}

// SiteOutcome is one site's resolved ledger row.
type SiteOutcome struct {
	Site     int        `json:"site"`
	Fn       string     `json:"fn,omitempty"`
	Pos      string     `json:"pos,omitempty"`
	Taken    DirOutcome `json:"taken"`
	NotTaken DirOutcome `json:"not_taken"`
}

// ExplainReport is the resolved coverage explanation: every branch
// direction of the program accounted for as covered or exactly one
// reason bucket.  Directions == Covered + the sum of Buckets, always.
// The report is pure ledger — no timeline, no wall clock — so it is
// byte-identical across worker counts whenever the underlying ledger
// is.
type ExplainReport struct {
	// Directions is the direction universe: 2 × branch sites.
	Directions int `json:"directions"`
	Covered    int `json:"covered"`
	// Buckets maps each reason to its dark-direction count (zero
	// buckets omitted; encoding/json sorts the keys).
	Buckets map[string]int `json:"buckets,omitempty"`
	Sites   []SiteOutcome  `json:"sites,omitempty"`
}

// CoveredPercent is Covered over Directions, in [0,100].
func (r *ExplainReport) CoveredPercent() float64 {
	if r.Directions == 0 {
		return 0
	}
	return 100 * float64(r.Covered) / float64(r.Directions)
}

// Resolve turns the raw ledger into the per-direction verdict over the
// program's full site universe.  covered reports whether a direction
// was executed; a site neither of whose directions was executed was
// never reached (executing a branch always covers one direction, so
// "reached" ⇔ "some direction covered").  For each reached-but-dark
// direction the recorded causes resolve by ReasonPrecedence; a dark
// direction with no recorded cause is "not-attempted".
func (s *ExplainSnapshot) Resolve(sites []ExplainSiteRef, covered func(site int, taken bool) bool) *ExplainReport {
	byCause := make(map[int]*SiteCause)
	if s != nil {
		for i := range s.Sites {
			byCause[s.Sites[i].Site] = &s.Sites[i]
		}
	}
	rep := &ExplainReport{Buckets: make(map[string]int)}
	for _, ref := range sites {
		out := SiteOutcome{Site: ref.Site, Fn: ref.Fn, Pos: ref.Pos}
		cause := byCause[ref.Site]
		tk := covered(ref.Site, true)
		ntk := covered(ref.Site, false)
		reached := tk || ntk
		resolveDir := func(dirCovered, taken bool) DirOutcome {
			rep.Directions++
			if dirCovered {
				rep.Covered++
				return DirOutcome{Covered: true}
			}
			d := DirOutcome{}
			if !reached {
				d.Reason = ReasonNeverReached
			} else {
				var dc *DirCause
				if cause != nil {
					dc = cause.dir(taken)
				} else {
					dc = &DirCause{}
				}
				switch {
				case dc.Mispredicts > 0:
					d.Reason = ReasonMispredict
				case dc.Dropped > 0:
					d.Reason = ReasonFrontierDropped
				case dc.DepthLimit > 0:
					d.Reason = ReasonDepthLimit
				case dc.Pointer > 0:
					d.Reason = ReasonPointerFallback
				case dc.Nonlinear > 0:
					d.Reason = ReasonNonlinearFallback
				case dc.Budget > 0:
					d.Reason = ReasonSolverBudget
				case dc.Unsat > 0:
					d.Reason = ReasonSolverUnsat
					d.UnsatSlice = dc.UnsatSlice
				case dc.Concrete > 0:
					d.Reason = ReasonConcreteCond
				default:
					d.Reason = ReasonNotAttempted
				}
			}
			rep.Buckets[d.Reason]++
			return d
		}
		out.Taken = resolveDir(tk, true)
		out.NotTaken = resolveDir(ntk, false)
		rep.Sites = append(rep.Sites, out)
	}
	if len(rep.Buckets) == 0 {
		rep.Buckets = nil
	}
	return rep
}

// dirLabel names a direction in human output.
func dirLabel(taken bool) string {
	if taken {
		return "taken"
	}
	return "not-taken"
}

// Table renders the explanation for humans: the bucket summary, then
// up to maxRows uncovered directions with their reasons (0 = all).
func (r *ExplainReport) Table(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage explanation: %d/%d branch directions covered (%.1f%%)\n",
		r.Covered, r.Directions, r.CoveredPercent())
	for _, reason := range ReasonPrecedence {
		if n := r.Buckets[reason]; n > 0 {
			fmt.Fprintf(&b, "  %-20s %6d\n", reason, n)
		}
	}
	type row struct {
		site    int
		fn, pos string
		dir     string
		out     *DirOutcome
	}
	var rows []row
	for i := range r.Sites {
		s := &r.Sites[i]
		for _, dir := range []struct {
			taken bool
			out   *DirOutcome
		}{{true, &s.Taken}, {false, &s.NotTaken}} {
			if !dir.out.Covered {
				rows = append(rows, row{s.Site, s.Fn, s.Pos, dirLabel(dir.taken), dir.out})
			}
		}
	}
	if len(rows) == 0 {
		return b.String()
	}
	shown := rows
	if maxRows > 0 && len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	fmt.Fprintf(&b, "uncovered directions (%d):\n", len(rows))
	fmt.Fprintf(&b, "  %-22s %5s %-10s %-20s %s\n", "POS (FN)", "SITE", "DIR", "REASON", "DETAIL")
	for _, rw := range shown {
		label := rw.pos
		if rw.fn != "" {
			label += " (" + rw.fn + ")"
		}
		detail := rw.out.UnsatSlice
		fmt.Fprintf(&b, "  %-22s %5d %-10s %-20s %s\n", label, rw.site, rw.dir, rw.out.Reason, detail)
	}
	if len(shown) < len(rows) {
		fmt.Fprintf(&b, "  ... %d more\n", len(rows)-len(shown))
	}
	return b.String()
}

// Timeline defaults (used when the search enables the explainer
// without configuring them).
const (
	// DefaultTimelineEvery samples the timeline every N completed runs.
	DefaultTimelineEvery = 16
	// DefaultTimelineCap bounds the sample ring.
	DefaultTimelineCap = 64
	// DefaultStallWindow is the plateau window in runs: a stall event
	// fires each time coverage has not moved for a full window.
	DefaultStallWindow = 256
)

// TimelineSample is one ring entry: the search's progress after Run
// completed runs.  Run counts are wall-clock free, but which run
// completes k-th under a parallel schedule is not deterministic — the
// timeline is the honest plane, excluded from byte comparisons.
type TimelineSample struct {
	Run int64 `json:"run"`
	// Covered is the branch-direction count covered so far.
	Covered int `json:"covered"`
	// Frontier is the pending-flip backlog at the sample.
	Frontier int `json:"frontier"`
	// Solves is the cumulative solver-call count.
	Solves int64 `json:"solves"`
}

// TimelineStall describes one fired plateau event.
type TimelineStall struct {
	// Run is the completed-run count when the stall fired.
	Run int64
	// Covered is the covered-direction count that has not moved.
	Covered int
	// Window is the configured plateau window (runs).
	Window int64
	// Since is how many runs coverage has been flat.
	Since int64
}

// Timeline is the search's run-indexed progress ring plus the
// plateau/stall detector.  Unlike the Explain collector it is shared —
// parallel workers tick one global timeline — so it locks internally;
// a nil *Timeline no-ops.  One Tick per completed run; a stall fires
// each time coverage has been flat for a further full window and
// re-arms as soon as coverage moves.
type Timeline struct {
	mu      sync.Mutex
	every   int64
	window  int64
	ringCap int

	runs     int64
	covered  int
	solves   int64
	lastMove int64
	stalls   int64
	ring     []TimelineSample
	next     int // ring write position once full
}

// NewTimeline returns a timeline sampling every `every` runs into a
// ring of ringCap samples, firing a stall per full window of flat
// coverage; window <= 0 disables the detector.  Zero values of
// every/ringCap select the defaults.
func NewTimeline(every, window int64, ringCap int) *Timeline {
	if every <= 0 {
		every = DefaultTimelineEvery
	}
	if ringCap <= 0 {
		ringCap = DefaultTimelineCap
	}
	return &Timeline{every: every, window: window, ringCap: ringCap}
}

// Tick records one completed run: how many branch directions it newly
// covered, the pending-flip backlog, and how many solver calls it
// performed.  When the tick completes a full window of flat coverage
// it returns the fired stall with ok=true; the caller (the ticking
// worker, on its own goroutine) emits the event, keeping per-worker
// registries race-free.  No-op on nil.
func (t *Timeline) Tick(newlyCovered, frontier int, solves int64) (stall TimelineStall, ok bool) {
	if t == nil {
		return TimelineStall{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs++
	t.covered += newlyCovered
	t.solves += solves
	if newlyCovered > 0 {
		t.lastMove = t.runs
	}
	if t.window > 0 {
		if since := t.runs - t.lastMove; since > 0 && since%t.window == 0 {
			t.stalls++
			stall, ok = TimelineStall{Run: t.runs, Covered: t.covered, Window: t.window, Since: since}, true
		}
	}
	if t.runs%t.every == 0 {
		t.push(TimelineSample{Run: t.runs, Covered: t.covered, Frontier: frontier, Solves: t.solves})
	}
	return stall, ok
}

// push appends into the bounded ring, overwriting the oldest sample
// once full.  Caller holds mu.
func (t *Timeline) push(s TimelineSample) {
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % t.ringCap
}

// Stalls returns how many plateau events have fired.
func (t *Timeline) Stalls() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stalls
}

// Stamp writes the timeline (in run order, with a final sample for the
// current state when the ring does not already end there) and the
// stall count onto snap.  No-op on a nil timeline or snapshot.
func (t *Timeline) Stamp(snap *ExplainSnapshot) {
	if t == nil || snap == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineSample, 0, len(t.ring)+1)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	if t.runs > 0 && (len(out) == 0 || out[len(out)-1].Run != t.runs) {
		out = append(out, TimelineSample{Run: t.runs, Covered: t.covered, Frontier: 0, Solves: t.solves})
	}
	snap.Timeline = out
	snap.Stalls = t.stalls
}
