// LiveMetrics: the event→metrics bridge.  The per-search registries of
// metrics.go are private to their search and only surface as snapshots
// after the search ends; a live operations surface needs the same
// counters *while* the search (or a whole parallel audit) runs.  Every
// standard counter and three of the standard histograms are derivable
// from the trace-event stream — the engine increments the registry and
// emits the event at the same sites — so a LiveMetrics sink fed the
// audit's event stream converges to exactly the counters of the final
// merged report (the one divergence: a timed-out function's retry
// replaces its report, discarding the first attempt's registry, while
// the event stream saw both attempts — live counters are ≥ report
// counters when deadlines trip).
package obs

import "sync"

// LiveMetrics is a Sink folding events into a metrics registry.  Unlike
// Metrics it is safe for concurrent use: audit workers from every
// goroutine emit into it.
type LiveMetrics struct {
	mu sync.Mutex
	m  *Metrics
	// events counts every event seen, including kinds that carry no
	// metric.
	events uint64
}

// NewLiveMetrics returns an empty bridge.
func NewLiveMetrics() *LiveMetrics {
	return &LiveMetrics{m: NewMetrics()}
}

// Event implements Sink.
func (l *LiveMetrics) Event(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events++
	switch ev.Kind {
	case RunEnd:
		l.m.Add(CRuns, 1)
		l.m.Observe(HStepsPerRun, ev.Steps)
	case Restart:
		l.m.Add(CRestarts, 1)
	case Misprediction:
		l.m.Add(CMispredicts, 1)
	case BranchFlip:
		l.m.Add(CBranchFlips, 1)
	case SolverCall:
		l.m.Observe(HPCLen, int64(ev.PCLen))
		l.m.Observe(HFrontierDepth, int64(ev.Depth))
	case SolverVerdict:
		switch ev.Verdict {
		case "sat":
			l.m.Add(CSolverSat, 1)
		case "budget-exhausted":
			l.m.Add(CSolverBudget, 1)
		default:
			l.m.Add(CSolverUnsat, 1)
		}
		if ev.Cache != "hit" && ev.Cache != "disk" {
			// A cached verdict (memory or disk) skips the work histogram
			// in the registry too: the histogram measures the solver, not
			// the memo.
			l.m.Observe(HSolverWork, ev.Work)
		}
		if ev.Sliced > 0 {
			l.m.Add(CSlicedPreds, int64(ev.Sliced))
		}
		if ev.Cache == "miss" {
			l.m.Add(CSolveCacheMisses, 1)
		}
		if ev.Cache == "disk" {
			l.m.Add(CSolveCacheDisk, 1)
		}
		if ev.CacheEvict {
			l.m.Add(CSolveCacheEvicts, 1)
		}
	case SolveCacheHit:
		l.m.Add(CSolveCacheHits, 1)
	case FrontierDrop:
		l.m.Add(CFrontierDropped, int64(ev.Dropped))
	case FrontierSteal:
		l.m.Add(CSteals, 1)
	case FrontierIdle:
		l.m.Add(CWorkerIdle, 1)
	case BugFound:
		l.m.Add(CBugs, 1)
	case JobQueued:
		l.m.Add(CJobsAccepted, 1)
		l.m.Observe(HJobQueueDepth, int64(ev.Depth))
	case JobRejected:
		l.m.Add(CJobsRejected, 1)
	case JobRetry:
		l.m.Add(CJobsRetried, 1)
	case JobEnd:
		l.m.Add(CJobsCompleted, 1)
		if ev.Status == "cached" {
			l.m.Add(CJobsCached, 1)
		}
	case CorpusHit:
		l.m.Add(CCorpusHits, 1)
		l.m.Add(CCorpusReplays, int64(ev.Count))
	case CorpusMiss:
		l.m.Add(CCorpusMisses, 1)
	case CorpusStore:
		l.m.Add(CCorpusStores, 1)
	case CoverageStall:
		l.m.Add(CStalls, 1)
	case UncoveredReason:
		l.m.Add(UncoveredPrefix+ev.Reason, int64(ev.Count))
	case FallbackConcrete:
		switch ev.Flag {
		case "all_linear":
			l.m.Add(CFallbackLinear, 1)
		case "all_locs_definite":
			l.m.Add(CFallbackLocs, 1)
		}
	}
}

// Snapshot freezes the current state; safe to call while events flow.
func (l *LiveMetrics) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.Snapshot()
}

// Events returns how many events the bridge has seen.
func (l *LiveMetrics) Events() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events
}
