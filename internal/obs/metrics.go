// The metrics registry: named counters and fixed-bucket histograms,
// recorded per run and per solve, never per instruction.  Each search
// owns its own registry, so no locking is needed on the record path;
// the audit pool gives every function its own registry and merges
// snapshots.  A nil *Metrics is a valid disabled registry — every
// method no-ops — so unobserved searches skip even the setup cost.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Standard metric names recorded by the engine.
const (
	// Counters.
	CRuns           = "runs"
	CRestarts       = "restarts"
	CMispredicts    = "mispredictions"
	CBranchFlips    = "branch_flips"
	CSolverSat      = "solver_sat"
	CSolverUnsat    = "solver_unsat"
	CSolverBudget   = "solver_budget_exhausted"
	CBugs           = "bugs_found"
	CFallbackLinear = "fallback_all_linear"
	CFallbackLocs   = "fallback_all_locs_definite"
	// Solver fast path: solve-cache activity and predicates pruned by
	// independence slicing before the solver ran.
	CSolveCacheHits   = "solve_cache_hits"
	CSolveCacheMisses = "solve_cache_misses"
	CSolveCacheEvicts = "solve_cache_evictions"
	CSlicedPreds      = "solver_sliced_preds"
	// CSolveCacheDisk counts solves answered by the disk-backed
	// persistent solve cache (consulted on in-memory misses when a
	// corpus is attached); like an in-memory hit it spends no solver
	// work and skips the work histograms.
	CSolveCacheDisk = "solve_cache_disk_hits"
	// Incremental re-audit: functions whose corpus entry replayed in
	// place of a full search, functions that fell through to search,
	// replayed suite fixtures, and entries written or refreshed.
	CCorpusHits    = "corpus_hits"
	CCorpusMisses  = "corpus_misses"
	CCorpusReplays = "corpus_replayed_cases"
	CCorpusStores  = "corpus_stores"
	// Frontier scheduling: pending flips discarded on MaxFrontier
	// overflow (a completeness loss, never silent), work-stealing
	// transfers between parallel workers, and worker idle episodes
	// (every deque empty, worker slept until new work arrived).
	CFrontierDropped = "frontier_dropped"
	CSteals          = "frontier_steals"
	CWorkerIdle      = "frontier_idle_waits"
	// Serve-layer job lifecycle: submissions admitted to the bounded
	// queue, refused at admission (queue full, draining, oversized or
	// malformed bodies), retried after an isolated executor fault,
	// completed (any terminal disposition), and answered byte-identically
	// from the content-addressed result store.
	CJobsAccepted  = "jobs_accepted"
	CJobsRejected  = "jobs_rejected"
	CJobsRetried   = "jobs_retried"
	CJobsCompleted = "jobs_completed"
	CJobsCached    = "jobs_cached"
	// Coverage explainer: plateau events the stall detector fired.
	// Per-reason dark-direction counts are dynamic counters named
	// UncoveredPrefix + reason (e.g. "uncovered_solver-unsat"); the
	// Prometheus exposition folds them into one labeled family,
	// dart_uncovered_total{reason=...}.
	CStalls = "coverage_stalls"

	// Histograms.
	HSolverLatencyUS = "solver_latency_us"
	HSolverWork      = "solver_work_per_solve"
	HStepsPerRun     = "steps_per_run"
	HPCLen           = "path_constraint_len"
	HFrontierDepth   = "frontier_depth"
	// HFrontierQueue samples the total pending-flip backlog at each
	// enqueue, the live queue-depth signal of the (parallel) frontier.
	HFrontierQueue = "frontier_queue_depth"
	// HJobQueueDepth samples the serve-layer job-queue backlog at each
	// admission; its distribution shows how close the service runs to
	// its configured depth (and therefore to shedding load).
	HJobQueueDepth = "job_queue_depth"
)

// UncoveredPrefix prefixes the per-reason explain counters (see
// CStalls above).
const UncoveredPrefix = "uncovered_"

// powers-of-two style upper bounds for each standard histogram; the
// last implicit bucket is +Inf.
var stdBuckets = map[string][]int64{
	HSolverLatencyUS: {1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000},
	HSolverWork:      {16, 256, 4_096, 65_536, 1 << 20, 1 << 24},
	HStepsPerRun:     {64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 2_000_000},
	HPCLen:           {1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024},
	HFrontierDepth:   {1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024},
	HFrontierQueue:   {1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536},
	HJobQueueDepth:   {1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024},
}

// Metrics is one search's registry.  It is not safe for concurrent use;
// every search (and every audited function) owns a private instance.
type Metrics struct {
	counters map[string]int64
	hists    map[string]*hist
}

type hist struct {
	bounds []int64 // inclusive upper bounds; one overflow bucket follows
	counts []int64 // len(bounds)+1
	count  int64
	sum    int64
}

// NewMetrics returns a registry with the standard histograms
// pre-registered.
func NewMetrics() *Metrics {
	m := &Metrics{
		counters: map[string]int64{},
		hists:    map[string]*hist{},
	}
	for name, bounds := range stdBuckets {
		m.hists[name] = &hist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	}
	return m
}

// Add increments counter name by n.
func (m *Metrics) Add(name string, n int64) {
	if m == nil {
		return
	}
	m.counters[name] += n
}

// Observe records v in histogram name (registering it with the standard
// buckets of HFrontierDepth when unknown).
func (m *Metrics) Observe(name string, v int64) {
	if m == nil {
		return
	}
	h, ok := m.hists[name]
	if !ok {
		h = &hist{bounds: stdBuckets[HFrontierDepth], counts: make([]int64, len(stdBuckets[HFrontierDepth])+1)}
		m.hists[name] = h
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
}

// HistView is the immutable snapshot of one histogram.
type HistView struct {
	// Bounds are the inclusive upper bounds; Counts has one extra
	// overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is the frozen state of a Metrics registry, attached to
// Report.Metrics and marshalled into the JSON report (map keys are
// sorted by encoding/json, keeping the encoding deterministic).
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Histograms map[string]HistView `json:"histograms"`
}

// Snapshot freezes the registry.  Histograms that never saw a sample
// are dropped, as are zero counters.
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	s := &Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistView{}}
	for name, v := range m.counters {
		if v != 0 {
			s.Counters[name] = v
		}
	}
	for name, h := range m.hists {
		if h.count == 0 {
			continue
		}
		hv := HistView{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		}
		s.Histograms[name] = hv
	}
	return s
}

// Merge folds other into s (bucket-wise for histograms with identical
// bounds; mismatched histograms keep s's buckets and only accumulate
// count/sum).  The audit pool uses it to aggregate per-function
// snapshots into one batch view.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, ohv := range other.Histograms {
		hv, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = HistView{
				Bounds: append([]int64(nil), ohv.Bounds...),
				Counts: append([]int64(nil), ohv.Counts...),
				Count:  ohv.Count,
				Sum:    ohv.Sum,
			}
			continue
		}
		if len(hv.Bounds) == len(ohv.Bounds) {
			for i := range hv.Counts {
				hv.Counts[i] += ohv.Counts[i]
			}
		}
		hv.Count += ohv.Count
		hv.Sum += ohv.Sum
		s.Histograms[name] = hv
	}
}

// Table renders the snapshot as an aligned human-readable table:
// counters first, then each histogram with per-bucket counts.
func (s *Snapshot) Table() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-28s %12d\n", name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hv := s.Histograms[name]
		mean := float64(hv.Sum) / float64(hv.Count)
		fmt.Fprintf(&b, "%-28s count=%d sum=%d mean=%.1f\n", name, hv.Count, hv.Sum, mean)
		for i, c := range hv.Counts {
			if c == 0 {
				continue
			}
			if i < len(hv.Bounds) {
				fmt.Fprintf(&b, "    <= %-10d %12d\n", hv.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, "    >  %-10d %12d\n", hv.Bounds[len(hv.Bounds)-1], c)
			}
		}
	}
	return b.String()
}
