package obs

import (
	"strings"
	"testing"
)

// TestExplainNilNoop: the nil collector obeys the package's no-op
// discipline — every Record* method and Snapshot are safe on nil.
func TestExplainNilNoop(t *testing.T) {
	var e *Explain
	e.RecordSolve(1, "1:1", true, "unsat", "x > 0")
	e.RecordFallback(1, "1:1", false, "nonlinear")
	e.RecordMispredict(2, "2:2", true)
	e.RecordDropped(2, "2:2", false)
	e.RecordDepthLimit(3, "3:3", true)
	if snap := e.Snapshot(); snap != nil {
		t.Fatalf("nil collector snapshot = %+v, want nil", snap)
	}
	var tl *Timeline
	if _, ok := tl.Tick(1, 0, 1); ok {
		t.Fatal("nil timeline fired a stall")
	}
	tl.Stamp(&ExplainSnapshot{})
	if tl.Stalls() != 0 {
		t.Fatal("nil timeline reported stalls")
	}
}

// TestExplainRecordSnapshot: verdict tallies land on the right
// direction, the min-lex unsat slice wins, and the snapshot is sorted
// by site index.
func TestExplainRecordSnapshot(t *testing.T) {
	e := NewExplain(0)
	e.RecordSolve(7, "7:1", true, "unsat", "(b)")
	e.RecordSolve(7, "7:1", true, "unsat", "(a)")
	e.RecordSolve(7, "7:1", true, "sat", "")
	e.RecordSolve(3, "3:1", false, "budget-exhausted", "")
	e.RecordFallback(3, "3:1", true, "pointer")
	e.RecordMispredict(3, "3:1", false)

	snap := e.Snapshot()
	if snap == nil || snap.Workers != 1 {
		t.Fatalf("snapshot = %+v, want Workers=1", snap)
	}
	if len(snap.Sites) != 2 || snap.Sites[0].Site != 3 || snap.Sites[1].Site != 7 {
		t.Fatalf("sites not sorted by index: %+v", snap.Sites)
	}
	s7 := snap.Sites[1]
	if s7.Taken.Attempts != 3 || s7.Taken.Unsat != 2 {
		t.Errorf("site 7 taken = %+v, want attempts 3, unsat 2", s7.Taken)
	}
	if s7.Taken.UnsatSlice != "(a)" {
		t.Errorf("unsat slice = %q, want min-lex \"(a)\"", s7.Taken.UnsatSlice)
	}
	s3 := snap.Sites[0]
	if s3.NotTaken.Budget != 1 || s3.NotTaken.Mispredicts != 1 || s3.Taken.Pointer != 1 {
		t.Errorf("site 3 = %+v", s3)
	}
}

// TestExplainSnapshotMerge: merging sums per-direction causes by site
// index, keeps the min-lex slice, appends unseen sites sorted, and
// never splices timelines (per-search data) while summing stalls.
// The append-then-update sequence exercises the index-map discipline:
// a site first appended by this very merge must still receive later
// updates after the backing array reallocates.
func TestExplainSnapshotMerge(t *testing.T) {
	base := &ExplainSnapshot{
		Workers: 1,
		Stalls:  2,
		Sites: []SiteCause{
			{Site: 5, Pos: "5:1", Taken: DirCause{Attempts: 1, Unsat: 1, UnsatSlice: "(z)"}},
		},
		Timeline: []TimelineSample{{Run: 16, Covered: 3}},
	}
	other := &ExplainSnapshot{
		Workers: 2,
		Stalls:  1,
		Sites: []SiteCause{
			{Site: 2, Taken: DirCause{Attempts: 4}},
			{Site: 5, Taken: DirCause{Attempts: 2, Unsat: 2, UnsatSlice: "(a)"}, NotTaken: DirCause{Dropped: 1}},
			{Site: 9, NotTaken: DirCause{DepthLimit: 3}},
		},
		Timeline: []TimelineSample{{Run: 32, Covered: 1}},
	}
	base.Merge(other)
	base.Merge(nil) // no-op

	if base.Workers != 3 || base.Stalls != 3 {
		t.Errorf("workers/stalls = %d/%d, want 3/3", base.Workers, base.Stalls)
	}
	if len(base.Timeline) != 1 || base.Timeline[0].Run != 16 {
		t.Errorf("merge spliced timelines: %+v", base.Timeline)
	}
	want := []int{2, 5, 9}
	if len(base.Sites) != len(want) {
		t.Fatalf("sites = %+v, want indices %v", base.Sites, want)
	}
	for i, w := range want {
		if base.Sites[i].Site != w {
			t.Fatalf("sites not sorted after merge: %+v", base.Sites)
		}
	}
	s5 := base.Sites[1]
	if s5.Taken.Attempts != 3 || s5.Taken.Unsat != 3 || s5.Taken.UnsatSlice != "(a)" {
		t.Errorf("site 5 taken after merge = %+v", s5.Taken)
	}
	if s5.NotTaken.Dropped != 1 || s5.Pos != "5:1" {
		t.Errorf("site 5 after merge = %+v", s5)
	}
}

// TestExplainResolvePrecedence: a direction carrying several recorded
// causes resolves to the highest-precedence one; each uncovered
// direction lands in exactly one bucket and the totals always close.
func TestExplainResolvePrecedence(t *testing.T) {
	snap := &ExplainSnapshot{Sites: []SiteCause{
		// mispredict outranks everything else recorded.
		{Site: 0, NotTaken: DirCause{Attempts: 5, Unsat: 3, Budget: 1, Mispredicts: 1, Dropped: 1}},
		// dropped outranks depth/fallback/solver.
		{Site: 1, NotTaken: DirCause{Attempts: 2, Unsat: 2, Dropped: 1, DepthLimit: 1}},
		// pure unsat with a slice.
		{Site: 2, NotTaken: DirCause{Attempts: 2, Unsat: 2, UnsatSlice: "(y < 0)"}},
		// budget beats unsat.
		{Site: 3, NotTaken: DirCause{Attempts: 2, Unsat: 1, Budget: 1}},
		// concrete condition.
		{Site: 4, NotTaken: DirCause{Concrete: 2}},
		// site 5: no causes at all → not-attempted.
	}}
	refs := make([]ExplainSiteRef, 7)
	for i := range refs {
		refs[i] = ExplainSiteRef{Site: i, Fn: "f"}
	}
	// Sites 0..5 have taken covered only; site 6 was never reached.
	covered := func(site int, taken bool) bool { return site != 6 && taken }

	rep := snap.Resolve(refs, covered)
	if rep.Directions != 14 || rep.Covered != 6 {
		t.Fatalf("directions/covered = %d/%d, want 14/6", rep.Directions, rep.Covered)
	}
	wantReason := map[int]string{
		0: ReasonMispredict,
		1: ReasonFrontierDropped,
		2: ReasonSolverUnsat,
		3: ReasonSolverBudget,
		4: ReasonConcreteCond,
		5: ReasonNotAttempted,
	}
	for site, want := range wantReason {
		if got := rep.Sites[site].NotTaken.Reason; got != want {
			t.Errorf("site %d not-taken reason = %q, want %q", site, got, want)
		}
	}
	if rep.Sites[2].NotTaken.UnsatSlice != "(y < 0)" {
		t.Errorf("unsat slice not surfaced: %+v", rep.Sites[2].NotTaken)
	}
	// Site 6 was never reached: BOTH directions get never-reached.
	if rep.Sites[6].Taken.Reason != ReasonNeverReached || rep.Sites[6].NotTaken.Reason != ReasonNeverReached {
		t.Errorf("unreached site = %+v", rep.Sites[6])
	}
	sum := rep.Covered
	for _, n := range rep.Buckets {
		sum += n
	}
	if sum != rep.Directions {
		t.Errorf("accounting leak: covered %d + buckets = %d, want %d", rep.Covered, sum, rep.Directions)
	}
	if rep.Buckets[ReasonNeverReached] != 2 || rep.Buckets[ReasonMispredict] != 1 {
		t.Errorf("buckets = %v", rep.Buckets)
	}
}

// TestExplainResolveNilSnapshot: Resolve is nil-receiver safe — every
// direction still resolves (covered, never-reached, or not-attempted).
func TestExplainResolveNilSnapshot(t *testing.T) {
	var snap *ExplainSnapshot
	rep := snap.Resolve([]ExplainSiteRef{{Site: 0}, {Site: 1}}, func(site int, taken bool) bool {
		return site == 0
	})
	if rep.Directions != 4 || rep.Covered != 2 {
		t.Fatalf("directions/covered = %d/%d, want 4/2", rep.Directions, rep.Covered)
	}
	if rep.Buckets[ReasonNeverReached] != 2 {
		t.Errorf("buckets = %v, want 2 never-reached", rep.Buckets)
	}
}

// TestTimelineStallSemantics: the detector fires exactly one stall per
// full flat window, re-arms the moment coverage moves, and stays quiet
// afterward; window <= 0 disables it entirely.
func TestTimelineStallSemantics(t *testing.T) {
	tl := NewTimeline(4, 10, 8)
	fired := 0
	// 25 flat runs: windows close at run 10 and 20 — exactly two.
	for i := 0; i < 25; i++ {
		if _, ok := tl.Tick(0, 0, 1); ok {
			fired++
		}
	}
	if fired != 2 || tl.Stalls() != 2 {
		t.Fatalf("flat 25 runs fired %d stalls (counter %d), want 2", fired, tl.Stalls())
	}
	// Coverage moves: detector re-arms, no stall until 10 MORE flat runs.
	if _, ok := tl.Tick(1, 0, 1); ok {
		t.Fatal("stall fired on a covering run")
	}
	for i := 0; i < 9; i++ {
		if _, ok := tl.Tick(0, 0, 1); ok {
			t.Fatalf("stall fired %d runs after resume, want 10", i+1)
		}
	}
	stall, ok := tl.Tick(0, 0, 1)
	if !ok {
		t.Fatal("no stall after a fresh full flat window")
	}
	if stall.Window != 10 || stall.Since != 10 {
		t.Errorf("stall = %+v, want window 10, since 10", stall)
	}

	// Disabled detector never fires.
	off := NewTimeline(4, 0, 8)
	for i := 0; i < 100; i++ {
		if _, ok := off.Tick(0, 0, 1); ok {
			t.Fatal("disabled detector fired")
		}
	}
}

// TestTimelineRingAndStamp: the ring is bounded, keeps the newest
// samples in run order, and Stamp appends a final sample for the
// current state when the ring does not already end there.
func TestTimelineRingAndStamp(t *testing.T) {
	tl := NewTimeline(2, 0, 3)
	for i := 0; i < 14; i++ {
		tl.Tick(1, i, 1)
	}
	var snap ExplainSnapshot
	tl.Stamp(&snap)
	// Samples at runs 2,4,...,14; ring cap 3 keeps 10,12,14; run 14 is
	// already the last sample so no extra final entry.
	wantRuns := []int64{10, 12, 14}
	if len(snap.Timeline) != len(wantRuns) {
		t.Fatalf("timeline = %+v, want runs %v", snap.Timeline, wantRuns)
	}
	for i, w := range wantRuns {
		if snap.Timeline[i].Run != w {
			t.Fatalf("timeline out of order: %+v", snap.Timeline)
		}
	}
	if last := snap.Timeline[2]; last.Covered != 14 || last.Solves != 14 {
		t.Errorf("last sample = %+v, want covered 14, solves 14", last)
	}

	// One more run off the sampling stride: Stamp adds a final sample.
	tl.Tick(0, 0, 1)
	var snap2 ExplainSnapshot
	tl.Stamp(&snap2)
	if n := len(snap2.Timeline); n != 4 || snap2.Timeline[n-1].Run != 15 {
		t.Fatalf("no final sample for run 15: %+v", snap2.Timeline)
	}
}

// TestExplainReportTable: the human rendering carries the bucket
// summary, one row per uncovered direction, and honest truncation.
func TestExplainReportTable(t *testing.T) {
	snap := &ExplainSnapshot{Sites: []SiteCause{
		{Site: 0, Pos: "3:5", NotTaken: DirCause{Attempts: 1, Unsat: 1, UnsatSlice: "(x > 9)"}},
		{Site: 1, Pos: "4:5", NotTaken: DirCause{Attempts: 1, Budget: 1}},
	}}
	refs := []ExplainSiteRef{{Site: 0, Fn: "f", Pos: "3:5"}, {Site: 1, Fn: "f", Pos: "4:5"}}
	rep := snap.Resolve(refs, func(site int, taken bool) bool { return taken })

	full := rep.Table(0)
	for _, want := range []string{"2/4 branch directions covered (50.0%)",
		ReasonSolverUnsat, ReasonSolverBudget, "(x > 9)", "3:5 (f)"} {
		if !strings.Contains(full, want) {
			t.Errorf("table missing %q:\n%s", want, full)
		}
	}
	trunc := rep.Table(1)
	if !strings.Contains(trunc, "... 1 more") {
		t.Errorf("truncated table missing overflow marker:\n%s", trunc)
	}
}
