package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNDJSONSequencesAndShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	s.Event(Event{Kind: RunStart, Fn: "f", Run: 1})
	s.Event(Event{Kind: RunEnd, Fn: "f", Run: 1, Steps: 7, Outcome: "halt", Path: "10"})
	s.Event(Event{Kind: BugFound, Fn: "f", Run: 1, Msg: "boom"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", s.Events())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("line %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	// Zero-valued optional fields must be omitted, keeping traces terse
	// and byte-stable.
	if strings.Contains(lines[0], "depth") || strings.Contains(lines[0], "path") {
		t.Errorf("unset fields not omitted: %s", lines[0])
	}
}

func TestNDJSONConcurrentWritersStayWellFormed(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Event(Event{Kind: RunStart, Run: i, Depth: w})
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	seen := map[uint64]bool{}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v\n%s", err, line)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestTeeCollapsesAndFansOut(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live sinks must collapse to nil")
	}
	var a, b Collector
	if Tee(&a, nil) != Sink(&a) {
		t.Error("Tee of one live sink must collapse to it")
	}
	tee := Tee(&a, &b)
	tee.Event(Event{Kind: Restart})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("fan-out: a=%d b=%d events, want 1 each", len(a.Events()), len(b.Events()))
	}
}

func TestGuardedDisablesOnPanic(t *testing.T) {
	if Guarded(nil) != nil {
		t.Error("Guarded(nil) must stay nil")
	}
	calls := 0
	g := Guarded(SinkFunc(func(Event) {
		calls++
		panic("observer bug")
	}))
	g.Event(Event{Kind: RunStart}) // must not unwind into us
	g.Event(Event{Kind: RunStart}) // disabled: no second call
	if calls != 1 {
		t.Errorf("sink called %d times, want 1 (disabled after the panic)", calls)
	}
}

func TestMetricsSnapshotAndMerge(t *testing.T) {
	m := NewMetrics()
	m.Add(CRuns, 2)
	m.Add(CBugs, 1)
	m.Observe(HStepsPerRun, 10)
	m.Observe(HStepsPerRun, 1000)
	s := m.Snapshot()
	if s.Counters[CRuns] != 2 || s.Counters[CBugs] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	h := s.Histograms[HStepsPerRun]
	if h.Count != 2 || h.Sum != 1010 {
		t.Errorf("hist count=%d sum=%d, want 2/1010", h.Count, h.Sum)
	}
	// Zero counters and empty histograms are dropped from snapshots.
	if _, ok := s.Histograms[HSolverWork]; ok {
		t.Error("empty histogram must not appear in the snapshot")
	}

	m2 := NewMetrics()
	m2.Add(CRuns, 3)
	m2.Observe(HStepsPerRun, 10)
	s.Merge(m2.Snapshot())
	if s.Counters[CRuns] != 5 {
		t.Errorf("merged runs = %d, want 5", s.Counters[CRuns])
	}
	if h := s.Histograms[HStepsPerRun]; h.Count != 3 || h.Sum != 1020 {
		t.Errorf("merged hist count=%d sum=%d, want 3/1020", h.Count, h.Sum)
	}

	table := s.Table()
	if !strings.Contains(table, CRuns) || !strings.Contains(table, HStepsPerRun) {
		t.Errorf("table rendering missing names:\n%s", table)
	}
}

// feed is a tiny synthetic search: the root run took path "10", the
// solver proved "11" feasible (never executed), "01" infeasible, and
// "00" was abandoned on budget.
func feedTree(t *Tree) {
	t.Event(Event{Kind: RunEnd, Path: "10", Outcome: "halt"})
	t.Event(Event{Kind: SolverCall, Path: "11"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "sat"})
	t.Event(Event{Kind: SolverCall, Path: "01"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "unsat"})
	t.Event(Event{Kind: SolverCall, Path: "00"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "budget-exhausted"})
}

func TestTreeReconstruction(t *testing.T) {
	tr := NewTree(0)
	feedTree(tr)
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Nodes int `json:"nodes"`
		Tree  []struct {
			Path    string `json:"path"`
			Status  string `json:"status"`
			Runs    int    `json:"runs"`
			Outcome string `json:"outcome"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"":   StatusDone,
		"1":  StatusDone,
		"10": StatusDone,
		"11": StatusPending,
		"0":  "", // materialized only as a parent; never classified
		"01": StatusInfeasible,
		"00": StatusAbandoned,
	}
	got := map[string]string{}
	for _, n := range dump.Tree {
		got[n.Path] = n.Status
		if n.Path == "10" && n.Outcome != "halt" {
			t.Errorf("leaf outcome = %q, want halt", n.Outcome)
		}
	}
	for path, status := range want {
		if got[path] != status {
			t.Errorf("node %q status = %q, want %q", path, got[path], status)
		}
	}
	// A later run down a pending path upgrades it to done.
	tr.Event(Event{Kind: RunEnd, Path: "11", Outcome: "abort"})
	b, _ = tr.JSON()
	if !strings.Contains(string(b), `"path": "11",
      "status": "done"`) {
		// Re-check structurally rather than failing on formatting.
		var d2 struct {
			Tree []struct{ Path, Status string } `json:"tree"`
		}
		json.Unmarshal(b, &d2)
		ok := false
		for _, n := range d2.Tree {
			if n.Path == "11" && n.Status == StatusDone {
				ok = true
			}
		}
		if !ok {
			t.Errorf("path 11 not upgraded to done:\n%s", b)
		}
	}

	dot := string(tr.DOT())
	for _, frag := range []string{"digraph dart", "palegreen", "lightgray", "lightsalmon", `label="0"`, `label="1"`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

// An audit fans one Tee out to several sinks from every worker at
// once; the fan-out must deliver every event to every sink without
// corruption.
func TestTeeConcurrentEmit(t *testing.T) {
	var a, b Collector
	tee := Tee(&a, &b)
	const workers, events = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				tee.Event(Event{Kind: RunStart, Run: i, Depth: w})
			}
		}(w)
	}
	wg.Wait()
	if len(a.Events()) != workers*events || len(b.Events()) != workers*events {
		t.Errorf("fan-out lost events: a=%d b=%d, want %d each",
			len(a.Events()), len(b.Events()), workers*events)
	}
}

// Guarded must disable a panicking sink exactly once even when many
// goroutines hit the panic simultaneously, and never unwind into any
// of them.
func TestGuardedConcurrentPanic(t *testing.T) {
	var calls int64
	g := Guarded(SinkFunc(func(Event) {
		atomic.AddInt64(&calls, 1)
		panic("observer bug")
	}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Event(Event{Kind: RunStart, Run: i})
			}
		}()
	}
	wg.Wait()
	// Several goroutines may race into the sink before the first panic
	// flips the disable switch, but the count must stay far below the
	// 800 total emits and no panic may have escaped.
	if got := atomic.LoadInt64(&calls); got < 1 || got > 8 {
		t.Errorf("panicking sink called %d times, want 1..8", got)
	}
}

// Tree is documented as safe for concurrent use: audit workers all emit
// into one tree.  Hammer it and check the node count stays coherent.
func TestTreeConcurrentEmit(t *testing.T) {
	tr := NewTree(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			feedTree(tr)
		}()
	}
	wg.Wait()
	// All workers feed identical paths, so the tree is the same 7-node
	// shape as a single feed, with runs summed.
	if tr.Nodes() != 7 {
		t.Errorf("concurrent feeds built %d nodes, want 7", tr.Nodes())
	}
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Tree []struct {
			Path string `json:"path"`
			Runs int    `json:"runs"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatal(err)
	}
	for _, n := range dump.Tree {
		if n.Path == "10" && n.Runs != 8 {
			t.Errorf("leaf runs = %d, want 8", n.Runs)
		}
	}
}

// LiveMetrics must fold an event stream into exactly the counters the
// engine's own registry would have recorded at the same emit sites.
func TestLiveMetricsFold(t *testing.T) {
	l := NewLiveMetrics()
	feed := []Event{
		{Kind: RunStart, Run: 1},
		{Kind: RunEnd, Run: 1, Steps: 10},
		{Kind: Restart},
		{Kind: Misprediction},
		{Kind: BranchFlip},
		{Kind: SolverCall, PCLen: 3, Depth: 2},
		{Kind: SolverVerdict, Verdict: "sat", Work: 5},
		{Kind: SolverCall, PCLen: 1, Depth: 1},
		{Kind: SolverVerdict, Verdict: "unsat", Work: 2},
		{Kind: SolverCall, PCLen: 2, Depth: 1},
		{Kind: SolverVerdict, Verdict: "budget-exhausted", Work: 9},
		{Kind: BugFound, Msg: "boom"},
		{Kind: FallbackConcrete, Flag: "all_linear"},
		{Kind: FallbackConcrete, Flag: "all_locs_definite"},
	}
	for _, ev := range feed {
		l.Event(ev)
	}
	if l.Events() != uint64(len(feed)) {
		t.Errorf("Events() = %d, want %d", l.Events(), len(feed))
	}
	s := l.Snapshot()
	wantCounters := map[string]int64{
		CRuns: 1, CRestarts: 1, CMispredicts: 1, CBranchFlips: 1,
		CSolverSat: 1, CSolverUnsat: 1, CSolverBudget: 1,
		CBugs: 1, CFallbackLinear: 1, CFallbackLocs: 1,
	}
	for name, want := range wantCounters {
		if s.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, s.Counters[name], want)
		}
	}
	if h := s.Histograms[HStepsPerRun]; h.Count != 1 || h.Sum != 10 {
		t.Errorf("steps hist count=%d sum=%d, want 1/10", h.Count, h.Sum)
	}
	if h := s.Histograms[HPCLen]; h.Count != 3 || h.Sum != 6 {
		t.Errorf("pc_len hist count=%d sum=%d, want 3/6", h.Count, h.Sum)
	}
	if h := s.Histograms[HSolverWork]; h.Count != 3 || h.Sum != 16 {
		t.Errorf("solver work hist count=%d sum=%d, want 3/16", h.Count, h.Sum)
	}
	// Snapshot must be a frozen copy: later events don't leak into it.
	l.Event(Event{Kind: RunEnd, Steps: 1})
	if s.Counters[CRuns] != 1 {
		t.Error("snapshot mutated by a later event")
	}
}

func TestLiveMetricsConcurrent(t *testing.T) {
	l := NewLiveMetrics()
	const workers, runs = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				l.Event(Event{Kind: RunEnd, Steps: 1})
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot().Counters[CRuns]; got != workers*runs {
		t.Errorf("runs = %d, want %d", got, workers*runs)
	}
}

func TestTreeTruncationCap(t *testing.T) {
	tr := NewTree(4)
	tr.Event(Event{Kind: RunEnd, Path: "0000000000", Outcome: "halt"})
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"truncated": true`) {
		t.Errorf("over-cap dump not marked truncated:\n%s", b)
	}
	if tr.Nodes() > 4 {
		t.Errorf("nodes = %d, beyond the cap of 4", tr.Nodes())
	}
}
