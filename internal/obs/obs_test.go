package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNDJSONSequencesAndShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	s.Event(Event{Kind: RunStart, Fn: "f", Run: 1})
	s.Event(Event{Kind: RunEnd, Fn: "f", Run: 1, Steps: 7, Outcome: "halt", Path: "10"})
	s.Event(Event{Kind: BugFound, Fn: "f", Run: 1, Msg: "boom"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", s.Events())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("line %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	// Zero-valued optional fields must be omitted, keeping traces terse
	// and byte-stable.
	if strings.Contains(lines[0], "depth") || strings.Contains(lines[0], "path") {
		t.Errorf("unset fields not omitted: %s", lines[0])
	}
}

func TestNDJSONConcurrentWritersStayWellFormed(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSON(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Event(Event{Kind: RunStart, Run: i, Depth: w})
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	seen := map[uint64]bool{}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v\n%s", err, line)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestTeeCollapsesAndFansOut(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live sinks must collapse to nil")
	}
	var a, b Collector
	if Tee(&a, nil) != Sink(&a) {
		t.Error("Tee of one live sink must collapse to it")
	}
	tee := Tee(&a, &b)
	tee.Event(Event{Kind: Restart})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("fan-out: a=%d b=%d events, want 1 each", len(a.Events()), len(b.Events()))
	}
}

func TestGuardedDisablesOnPanic(t *testing.T) {
	if Guarded(nil) != nil {
		t.Error("Guarded(nil) must stay nil")
	}
	calls := 0
	g := Guarded(SinkFunc(func(Event) {
		calls++
		panic("observer bug")
	}))
	g.Event(Event{Kind: RunStart}) // must not unwind into us
	g.Event(Event{Kind: RunStart}) // disabled: no second call
	if calls != 1 {
		t.Errorf("sink called %d times, want 1 (disabled after the panic)", calls)
	}
}

func TestMetricsSnapshotAndMerge(t *testing.T) {
	m := NewMetrics()
	m.Add(CRuns, 2)
	m.Add(CBugs, 1)
	m.Observe(HStepsPerRun, 10)
	m.Observe(HStepsPerRun, 1000)
	s := m.Snapshot()
	if s.Counters[CRuns] != 2 || s.Counters[CBugs] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	h := s.Histograms[HStepsPerRun]
	if h.Count != 2 || h.Sum != 1010 {
		t.Errorf("hist count=%d sum=%d, want 2/1010", h.Count, h.Sum)
	}
	// Zero counters and empty histograms are dropped from snapshots.
	if _, ok := s.Histograms[HSolverWork]; ok {
		t.Error("empty histogram must not appear in the snapshot")
	}

	m2 := NewMetrics()
	m2.Add(CRuns, 3)
	m2.Observe(HStepsPerRun, 10)
	s.Merge(m2.Snapshot())
	if s.Counters[CRuns] != 5 {
		t.Errorf("merged runs = %d, want 5", s.Counters[CRuns])
	}
	if h := s.Histograms[HStepsPerRun]; h.Count != 3 || h.Sum != 1020 {
		t.Errorf("merged hist count=%d sum=%d, want 3/1020", h.Count, h.Sum)
	}

	table := s.Table()
	if !strings.Contains(table, CRuns) || !strings.Contains(table, HStepsPerRun) {
		t.Errorf("table rendering missing names:\n%s", table)
	}
}

// feed is a tiny synthetic search: the root run took path "10", the
// solver proved "11" feasible (never executed), "01" infeasible, and
// "00" was abandoned on budget.
func feedTree(t *Tree) {
	t.Event(Event{Kind: RunEnd, Path: "10", Outcome: "halt"})
	t.Event(Event{Kind: SolverCall, Path: "11"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "sat"})
	t.Event(Event{Kind: SolverCall, Path: "01"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "unsat"})
	t.Event(Event{Kind: SolverCall, Path: "00"})
	t.Event(Event{Kind: SolverVerdict, Verdict: "budget-exhausted"})
}

func TestTreeReconstruction(t *testing.T) {
	tr := NewTree(0)
	feedTree(tr)
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Nodes int `json:"nodes"`
		Tree  []struct {
			Path    string `json:"path"`
			Status  string `json:"status"`
			Runs    int    `json:"runs"`
			Outcome string `json:"outcome"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"":   StatusDone,
		"1":  StatusDone,
		"10": StatusDone,
		"11": StatusPending,
		"0":  "", // materialized only as a parent; never classified
		"01": StatusInfeasible,
		"00": StatusAbandoned,
	}
	got := map[string]string{}
	for _, n := range dump.Tree {
		got[n.Path] = n.Status
		if n.Path == "10" && n.Outcome != "halt" {
			t.Errorf("leaf outcome = %q, want halt", n.Outcome)
		}
	}
	for path, status := range want {
		if got[path] != status {
			t.Errorf("node %q status = %q, want %q", path, got[path], status)
		}
	}
	// A later run down a pending path upgrades it to done.
	tr.Event(Event{Kind: RunEnd, Path: "11", Outcome: "abort"})
	b, _ = tr.JSON()
	if !strings.Contains(string(b), `"path": "11",
      "status": "done"`) {
		// Re-check structurally rather than failing on formatting.
		var d2 struct {
			Tree []struct{ Path, Status string } `json:"tree"`
		}
		json.Unmarshal(b, &d2)
		ok := false
		for _, n := range d2.Tree {
			if n.Path == "11" && n.Status == StatusDone {
				ok = true
			}
		}
		if !ok {
			t.Errorf("path 11 not upgraded to done:\n%s", b)
		}
	}

	dot := string(tr.DOT())
	for _, frag := range []string{"digraph dart", "palegreen", "lightgray", "lightsalmon", `label="0"`, `label="1"`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestTreeTruncationCap(t *testing.T) {
	tr := NewTree(4)
	tr.Event(Event{Kind: RunEnd, Path: "0000000000", Outcome: "halt"})
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"truncated": true`) {
		t.Errorf("over-cap dump not marked truncated:\n%s", b)
	}
	if tr.Nodes() > 4 {
		t.Errorf("nodes = %d, beyond the cap of 4", tr.Nodes())
	}
}
