package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span phase names.  A span is one timed region of the search; every
// nanosecond the engine spends lands in exactly one phase (plus the
// queue- and scheduler-side waits, which overlap nothing), so the
// per-phase breakdown is a complete account of where wall time went.
//
// The concrete run and its symbolic shadow are deliberately one fused
// phase (SpanExec): the machine evaluates both in the same instruction
// loop, and timing them separately would require per-instruction
// hooks — exactly the overhead the nil-observer discipline forbids.
const (
	// SpanExec: one concrete execution plus its symbolic shadow
	// (run_DART's "execute P on input", Fig. 2).
	SpanExec = "exec"
	// SpanSlice: independence slicing of the path constraint before a
	// solve (the fast path in front of Fig. 5's solve_path_constraint).
	SpanSlice = "slice"
	// SpanCacheLookup: canonical key construction plus solve-cache
	// probe.
	SpanCacheLookup = "cache_lookup"
	// SpanSolve: the constraint solver proper (Fig. 5).
	SpanSolve = "solve"
	// SpanVerify: re-checking a model (fresh or cached) against the
	// full unsliced path constraint.
	SpanVerify = "verify"
	// SpanFrontierWait: a parallel worker blocked on the frontier
	// scheduler — idle plus steal time, the parallelism tax.
	SpanFrontierWait = "frontier_wait"
	// SpanJobQueueWait: a serve-layer job waiting in the bounded queue
	// between admission and its executor picking it up.
	SpanJobQueueWait = "job_queue_wait"
	// SpanShadow: instruction-level symbolic shadow evaluations, as a
	// pure count (zero nanos — the shadow is fused into SpanExec's wall
	// time).  The compiled engine's taint bitmap makes this
	// pay-as-you-go, so the count is the direct measure of how much
	// shadow work the bitmap saved; the reference interpreter evaluates
	// the shadow unconditionally and records correspondingly more.
	SpanShadow = "shadow_eval"
)

// PhaseProfile is the aggregate cost of one span phase.
type PhaseProfile struct {
	Phase string `json:"phase"`
	// Count is the number of spans recorded in this phase.
	Count int64 `json:"count"`
	// Nanos is their summed wall-clock duration.
	Nanos int64 `json:"nanos"`
}

// SiteProfile is the solver cost attributed to one branch site of one
// function: how often its flips were attempted, what they cost in
// solver work and wall time, and how the cache treated them.  Site is
// the machine's branch-site index; Pos its source position.
type SiteProfile struct {
	Site int    `json:"site"`
	Pos  string `json:"pos,omitempty"`
	Fn   string `json:"fn,omitempty"`
	// Solves counts solver calls targeting this site (cache hits
	// included); SolveNanos and Work are their summed wall time and
	// solver work units (hits contribute zero work by construction).
	Solves     int64 `json:"solves"`
	SolveNanos int64 `json:"solve_nanos,omitempty"`
	Work       int64 `json:"work,omitempty"`
	// CacheHits + CacheMisses ≤ Solves: solves with the cache disabled
	// count as neither.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	Sat         int64 `json:"sat,omitempty"`
	Unsat       int64 `json:"unsat,omitempty"`
	// Budget counts solves abandoned on budget exhaustion — the honest
	// "this site is too hard" signal.
	Budget int64 `json:"budget,omitempty"`
	// Flips counts satisfiable flips actually installed as next inputs.
	Flips int64 `json:"flips,omitempty"`
}

// MissRate is CacheMisses over cache-visible solves, in [0,1]; zero
// when the cache never saw this site.
func (s *SiteProfile) MissRate() float64 {
	seen := s.CacheHits + s.CacheMisses
	if seen == 0 {
		return 0
	}
	return float64(s.CacheMisses) / float64(seen)
}

// ProfileSnapshot is an immutable, mergeable cost profile: the
// per-phase wall breakdown plus per-site solver attribution.  Like
// Metrics.Snapshot it is plain data — safe to serialize, diff, and
// merge across workers or jobs.
//
// Determinism contract (mirrors the PR 5 report merge): every field
// except the *Nanos timings is a deterministic function of the search
// seed, so snapshots taken at different -workers counts agree exactly
// once timing fields are zeroed.  Timings are honest wall clock and
// vary run to run.
type ProfileSnapshot struct {
	// Workers is the number of per-worker profiles merged in.
	Workers int            `json:"workers,omitempty"`
	Phases  []PhaseProfile `json:"phases,omitempty"`
	Sites   []SiteProfile  `json:"sites,omitempty"`
}

// Profile is one worker's span-and-site cost collector.  Like
// *Metrics, a nil *Profile is a valid no-op collector, so call sites
// guard only the timing capture (time.Now) and never the recording
// itself.  A Profile is owned by a single goroutine and unlocked;
// cross-worker aggregation happens by merging snapshots, exactly as
// the parallel search merges reports.
type Profile struct {
	fn     string
	worker int
	phases map[string]*PhaseProfile
	sites  map[int]*SiteProfile
}

// NewProfile returns an empty collector for one worker of a search
// over toplevel function fn.
func NewProfile(fn string, worker int) *Profile {
	return &Profile{
		fn:     fn,
		worker: worker,
		phases: make(map[string]*PhaseProfile),
		sites:  make(map[int]*SiteProfile),
	}
}

// Span records one timed region of phase. No-op on a nil receiver.
func (p *Profile) Span(phase string, d time.Duration) {
	if p == nil {
		return
	}
	ph := p.phases[phase]
	if ph == nil {
		ph = &PhaseProfile{Phase: phase}
		p.phases[phase] = ph
	}
	ph.Count++
	ph.Nanos += int64(d)
}

// AddCount adds n untimed events to phase (Nanos stays zero — used for
// pure counters like SpanShadow). No-op on a nil receiver.
func (p *Profile) AddCount(phase string, n int64) {
	if p == nil || n == 0 {
		return
	}
	ph := p.phases[phase]
	if ph == nil {
		ph = &PhaseProfile{Phase: phase}
		p.phases[phase] = ph
	}
	ph.Count += n
}

// site returns the (lazily created) per-site cell.
func (p *Profile) site(site int, pos string) *SiteProfile {
	s := p.sites[site]
	if s == nil {
		s = &SiteProfile{Site: site, Pos: pos}
		p.sites[site] = s
	} else if s.Pos == "" {
		s.Pos = pos
	}
	return s
}

// RecordSolve attributes one finished solver call (fresh or cached) to
// a branch site.  verdict is the solver.Verdict string; cache is the
// solve cache's disposition ("hit", "miss", or "" when disabled);
// solveNanos is the wall time of the solve span.  No-op on nil.
func (p *Profile) RecordSolve(site int, pos, verdict string, work, solveNanos int64, cache string) {
	if p == nil {
		return
	}
	s := p.site(site, pos)
	s.Solves++
	s.SolveNanos += solveNanos
	s.Work += work
	switch cache {
	case "hit":
		s.CacheHits++
	case "miss":
		s.CacheMisses++
	}
	switch verdict {
	case "sat":
		s.Sat++
	case "unsat":
		s.Unsat++
	case "budget-exhausted":
		s.Budget++
	}
}

// RecordFlip attributes one installed branch flip to a site. No-op on
// nil.
func (p *Profile) RecordFlip(site int, pos string) {
	if p == nil {
		return
	}
	p.site(site, pos).Flips++
}

// Snapshot freezes the collector into mergeable plain data, stamping
// the function name and sorting deterministically (phases by name,
// sites by function then site index).  Nil receivers yield nil.
func (p *Profile) Snapshot() *ProfileSnapshot {
	if p == nil {
		return nil
	}
	snap := &ProfileSnapshot{Workers: 1}
	for _, ph := range p.phases {
		snap.Phases = append(snap.Phases, *ph)
	}
	for _, s := range p.sites {
		c := *s
		c.Fn = p.fn
		snap.Sites = append(snap.Sites, c)
	}
	snap.sort()
	return snap
}

func (s *ProfileSnapshot) sort() {
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Phase < s.Phases[j].Phase })
	sort.Slice(s.Sites, func(i, j int) bool {
		a, b := &s.Sites[i], &s.Sites[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Site < b.Site
	})
}

// Merge folds o into s, summing phases by name and sites by
// (function, site) — the profile analog of the PR 5 report merge, so
// a parallel search's profile is the same bag of counters no matter
// how the frontier was divided.  A nil o is a no-op.
func (s *ProfileSnapshot) Merge(o *ProfileSnapshot) {
	if o == nil {
		return
	}
	s.Workers += o.Workers
	// The maps hold indices, never pointers: appending to the slices
	// below may reallocate their backing arrays, and a stale pointer
	// would silently drop every later update to an already-known key.
	phases := make(map[string]int, len(s.Phases))
	for i := range s.Phases {
		phases[s.Phases[i].Phase] = i
	}
	for _, ph := range o.Phases {
		if i, ok := phases[ph.Phase]; ok {
			s.Phases[i].Count += ph.Count
			s.Phases[i].Nanos += ph.Nanos
		} else {
			phases[ph.Phase] = len(s.Phases)
			s.Phases = append(s.Phases, ph)
		}
	}
	type key struct {
		fn   string
		site int
	}
	sites := make(map[key]int, len(s.Sites))
	for i := range s.Sites {
		sites[key{s.Sites[i].Fn, s.Sites[i].Site}] = i
	}
	for _, o := range o.Sites {
		i, ok := sites[key{o.Fn, o.Site}]
		if !ok {
			sites[key{o.Fn, o.Site}] = len(s.Sites)
			s.Sites = append(s.Sites, o)
			continue
		}
		dst := &s.Sites[i]
		if dst.Pos == "" {
			dst.Pos = o.Pos
		}
		dst.Solves += o.Solves
		dst.SolveNanos += o.SolveNanos
		dst.Work += o.Work
		dst.CacheHits += o.CacheHits
		dst.CacheMisses += o.CacheMisses
		dst.Sat += o.Sat
		dst.Unsat += o.Unsat
		dst.Budget += o.Budget
		dst.Flips += o.Flips
	}
	s.sort()
}

// TopSites returns the n costliest sites, ranked by solve wall time,
// then solver work, then (fn, site) for a deterministic tail order.
// The snapshot itself stays in canonical (fn, site) order.
func (s *ProfileSnapshot) TopSites(n int) []SiteProfile {
	top := make([]SiteProfile, len(s.Sites))
	copy(top, s.Sites)
	sort.SliceStable(top, func(i, j int) bool {
		a, b := &top[i], &top[j]
		if a.SolveNanos != b.SolveNanos {
			return a.SolveNanos > b.SolveNanos
		}
		if a.Work != b.Work {
			return a.Work > b.Work
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Site < b.Site
	})
	if n > 0 && len(top) > n {
		top = top[:n]
	}
	return top
}

// Table renders the profile for humans: the per-phase wall breakdown,
// then the top-n sites by solve cost.
func (s *ProfileSnapshot) Table(n int) string {
	var b strings.Builder
	var total int64
	for _, ph := range s.Phases {
		total += ph.Nanos
	}
	fmt.Fprintf(&b, "phase breakdown (%s total", time.Duration(total))
	if s.Workers > 1 {
		fmt.Fprintf(&b, " across %d workers", s.Workers)
	}
	b.WriteString("):\n")
	phases := make([]PhaseProfile, len(s.Phases))
	copy(phases, s.Phases)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].Nanos > phases[j].Nanos })
	fmt.Fprintf(&b, "  %-15s %10s %14s %7s\n", "PHASE", "COUNT", "TOTAL", "SHARE")
	for _, ph := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(ph.Nanos) / float64(total)
		}
		fmt.Fprintf(&b, "  %-15s %10d %14s %6.1f%%\n",
			ph.Phase, ph.Count, time.Duration(ph.Nanos), share)
	}
	top := s.TopSites(n)
	if len(top) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "top %d branch sites by solve cost:\n", len(top))
	fmt.Fprintf(&b, "  %-22s %5s %7s %12s %10s %6s %8s %6s\n",
		"POS (FN)", "SITE", "SOLVES", "TIME", "WORK", "MISS%", "S/U/B", "FLIPS")
	for i := range top {
		st := &top[i]
		label := st.Pos
		if st.Fn != "" {
			label += " (" + st.Fn + ")"
		}
		fmt.Fprintf(&b, "  %-22s %5d %7d %12s %10d %5.0f%% %8s %6d\n",
			label, st.Site, st.Solves, time.Duration(st.SolveNanos), st.Work,
			100*st.MissRate(),
			fmt.Sprintf("%d/%d/%d", st.Sat, st.Unsat, st.Budget), st.Flips)
	}
	return b.String()
}

// LiveProfile is a Sink that folds the event stream into per-site
// solver attribution, the ops-server counterpart of attaching a
// Profile to the engine.  Events carry no wall-clock (the determinism
// contract), so a live profile has exact work counters but no timing;
// Pos is likewise absent, because events identify sites by index only.
type LiveProfile struct {
	mu    sync.Mutex
	sites map[liveSiteKey]*SiteProfile
}

type liveSiteKey struct {
	fn   string
	site int
}

// NewLiveProfile returns an empty live profile.
func NewLiveProfile() *LiveProfile {
	return &LiveProfile{sites: make(map[liveSiteKey]*SiteProfile)}
}

// Event implements Sink.
func (l *LiveProfile) Event(ev Event) {
	if ev.Site == 0 {
		return // not site-attributed (Site is 1-based on the wire)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := liveSiteKey{ev.Fn, ev.Site - 1}
	s := l.sites[k]
	if s == nil {
		s = &SiteProfile{Site: k.site, Fn: k.fn}
		l.sites[k] = s
	}
	switch ev.Kind {
	case SolverVerdict:
		s.Solves++
		s.Work += ev.Work
		switch ev.Cache {
		case "hit":
			s.CacheHits++
		case "miss":
			s.CacheMisses++
		}
		switch ev.Verdict {
		case "sat":
			s.Sat++
		case "unsat":
			s.Unsat++
		case "budget-exhausted":
			s.Budget++
		}
	case BranchFlip:
		s.Flips++
	}
}

// Snapshot freezes the live attribution into a sites-only snapshot.
func (l *LiveProfile) Snapshot() *ProfileSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := &ProfileSnapshot{}
	for _, s := range l.sites {
		snap.Sites = append(snap.Sites, *s)
	}
	snap.sort()
	return snap
}
