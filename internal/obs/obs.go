// Package obs is the search observability layer: structured trace
// events, a metrics registry, and an explorable execution-tree model,
// all zero-dependency (standard library only) so every other package —
// engine, solver, machine, audit pool — can thread it through without
// coupling.
//
// The engine emits typed Events to a Sink carried on the search options.
// A nil sink costs one nil-check on the instrumented paths; none of the
// instrumentation sits inside the machine's per-instruction step loop,
// so observation never taxes raw execution throughput.  Events carry
// only deterministic payloads (run indices, branch depths, path bit
// strings, solver work units — never wall-clock times), so a fixed-seed
// search produces a byte-identical NDJSON trace on every replay.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Kind discriminates trace events.
type Kind string

// Event kinds, in rough lifecycle order.  DESIGN.md maps each kind to
// the paper's algorithm (e.g. BranchFlip is directed_search's branch
// negation; Restart is the forcing_ok outer-loop restart).
const (
	// RunStart: one concrete+symbolic execution is about to begin.
	RunStart Kind = "run-start"
	// RunEnd: the execution finished; carries steps, outcome, and the
	// executed branch path as a bit string ("1" taken, "0" not taken).
	RunEnd Kind = "run-end"
	// BranchFlip: the search negated the branch predicate at Depth and
	// will drive the next run down Path (Fig. 5's branch negation).
	BranchFlip Kind = "branch-flip"
	// Misprediction: the run diverged from the predicted branch at Depth
	// (Fig. 4 cleared forcing_ok).
	Misprediction Kind = "mispredict"
	// Restart: the outer loop restarted from fresh random inputs.
	Restart Kind = "restart"
	// SolverCall: a path-constraint solve is starting; PCLen is the
	// constraint length, Path the target path being forced.
	SolverCall Kind = "solver-call"
	// SolverVerdict: the solve finished with Verdict after Work units.
	SolverVerdict Kind = "solver-verdict"
	// SolveCacheHit: the per-search solve cache answered this solve from
	// a memoized slice-level result (between the solve's SolverCall and
	// SolverVerdict events); PCLen is the sliced constraint length and
	// Verdict the memoized verdict.  Deterministic like every other
	// payload: a fixed seed hits the cache at the same points every run.
	SolveCacheHit Kind = "solve-cache-hit"
	// FrontierDrop: the pending-flip worklist overflowed MaxFrontier and
	// Dropped items were discarded.  Dropped flips are abandoned subtrees:
	// a search that dropped anything can no longer claim completeness, so
	// the drops are counted (Report.FrontierDropped) instead of silent.
	FrontierDrop Kind = "frontier-drop"
	// FrontierSteal: a parallel frontier worker ran out of local work and
	// stole a pending flip from a sibling's deque (Worker identifies the
	// thief).
	FrontierSteal Kind = "frontier-steal"
	// FrontierIdle: a parallel frontier worker found every deque empty
	// and slept until new work arrived (one event per idle episode, not
	// per wakeup).
	FrontierIdle Kind = "frontier-idle"
	// FallbackConcrete: a symbolic expression left the theory and fell
	// back to its concrete value; Flag names the completeness flag that
	// was cleared ("all_linear" or "all_locs_definite").  Emitted once
	// per run per flag, on the true-to-false transition.
	FallbackConcrete Kind = "fallback-concrete"
	// BugFound: a distinct program error was recorded.
	BugFound Kind = "bug-found"
	// AuditFnStart / AuditFnEnd bracket one function of a library audit.
	AuditFnStart Kind = "audit-fn-start"
	AuditFnEnd   Kind = "audit-fn-end"
	// CorpusHit: an audited function's corpus entry matched (same IR
	// content hash, same search options) and its distilled suite
	// replayed and validated, so the full search was skipped.  Count is
	// the number of replayed fixtures (suite cases plus bug fixtures).
	CorpusHit Kind = "corpus-hit"
	// CorpusMiss: an audited function fell through to full search;
	// Reason says why ("absent", "hash-changed", "options-changed",
	// "invalid", "replay-mismatch").
	CorpusMiss Kind = "corpus-miss"
	// CorpusStore: a completed search distilled its run log and wrote
	// (or refreshed) the function's corpus entry; Count is the distilled
	// suite size.
	CorpusStore Kind = "corpus-store"
	// JobQueued: the serve layer admitted a submission into the bounded
	// job queue (Job carries the id; Depth the queue depth after the
	// enqueue).  A cache-served submission is also announced as
	// JobQueued + JobEnd with Status "cached".
	JobQueued Kind = "job-queued"
	// JobStart: an executor picked the job up and its audit began.
	JobStart Kind = "job-start"
	// JobRetry: the job's attempt died to an isolated executor fault and
	// is being retried after backoff (Run is the 1-based attempt that
	// failed, Msg the fault).
	JobRetry Kind = "job-retry"
	// JobEnd: the job completed; Status is the job's terminal disposition
	// ("done", "cached", or a stop reason such as "deadline", "drain",
	// "internal-fault"), Runs/Bugs summarize its report.
	JobEnd Kind = "job-end"
	// JobRejected: a submission was refused at admission; Status says why
	// ("queue-full", "draining", "too-large", "bad-request").  Rejections
	// are the service's honest load-shedding signal — every 429/413/503
	// on POST /jobs emits exactly one.
	JobRejected Kind = "job-rejected"
	// CoverageStall: the explainer's plateau detector saw branch
	// coverage flat for a further full window of runs (Runs = completed
	// runs, Covered = the flat direction count, Window = the configured
	// window).  Fires once per full window and re-arms when coverage
	// moves.  Run counts, not wall clock: the payload stays
	// deterministic for a fixed schedule.
	CoverageStall Kind = "coverage-stall"
	// UncoveredReason: one resolved reason bucket of a finished search's
	// coverage explanation (Reason = the bucket, Count = its dark
	// direction count).  Emitted once per non-zero bucket at search end,
	// mirroring the report's explain ledger, so LiveMetrics can expose
	// dart_uncovered_total{reason=...} without replaying the ledger.
	UncoveredReason Kind = "uncovered-reason"
)

// Event is one structured trace record.  A single flat struct (rather
// than one type per kind) keeps NDJSON encoding allocation-free of
// reflection surprises and lets sinks switch on Kind without type
// assertions; unused fields are omitted from the JSON encoding.
type Event struct {
	// Seq is a monotonic sequence number assigned by the NDJSON sink at
	// write time (zero until then), making interleaved multi-worker
	// streams totally ordered on disk.
	Seq uint64 `json:"seq"`
	// Kind discriminates the event.
	Kind Kind `json:"ev"`
	// Fn is the toplevel function under test (always set by the engine;
	// lets per-function streams be demultiplexed from an audit trace).
	Fn string `json:"fn,omitempty"`
	// Job is the serve-layer job id the event belongs to; absent outside
	// job execution, so single-search and CLI-audit traces are unchanged.
	// Per-job streams demultiplex from the shared /events ring on it.
	Job string `json:"job,omitempty"`
	// Run is the 1-based run index within the function's search.  Under
	// the parallel frontier engine it is the index within the emitting
	// worker's own run stream (each worker numbers its runs from 1), so
	// (Fn, Worker, Run) identifies a run and per-worker streams stay
	// individually deterministic.
	Run int `json:"run,omitempty"`
	// Worker is the 1-based parallel frontier worker that emitted the
	// event; absent (0) for sequential searches, so single-worker traces
	// are byte-identical to pre-parallel ones.
	Worker int `json:"worker,omitempty"`
	// Dropped is the number of pending flips a FrontierDrop discarded.
	Dropped int `json:"dropped,omitempty"`
	// Depth is the branch index the event refers to (flip index,
	// misprediction point).
	Depth int `json:"depth,omitempty"`
	// Site is the 1-based branch-site index a SolverCall, SolverVerdict,
	// or BranchFlip targets (the machine's site number plus one, so the
	// zero value means "not site-attributed" — decision records and
	// non-branch events).  Deterministic: it names a static program
	// point, letting cost profiles be rebuilt from the event stream.
	Site int `json:"site,omitempty"`
	// PCLen is the path-constraint length of a solver call.
	PCLen int `json:"pc_len,omitempty"`
	// Path is a branch-outcome bit string ("1" taken, "0" not taken):
	// the executed path on RunEnd, the forced target on SolverCall and
	// BranchFlip.
	Path string `json:"path,omitempty"`
	// Verdict is the solver verdict ("sat", "unsat", "budget-exhausted").
	Verdict string `json:"verdict,omitempty"`
	// Work is the solver work spent (solver work units, deterministic).
	Work int64 `json:"work,omitempty"`
	// Sliced is the number of path-constraint predicates independence
	// slicing pruned before this solve (on SolverVerdict).
	Sliced int `json:"sliced,omitempty"`
	// Cache is the solve cache's disposition for a SolverVerdict: "hit",
	// "miss", or absent when the cache is disabled.  A hit is also
	// announced by its own SolveCacheHit event just before the verdict.
	Cache string `json:"cache,omitempty"`
	// CacheEvict marks a SolverVerdict whose memoization evicted the
	// least-recently-used cache entry.
	CacheEvict bool `json:"cache_evict,omitempty"`
	// Steps is the instruction count of a finished run.
	Steps int64 `json:"steps,omitempty"`
	// Outcome classifies a finished run ("halt", "abort", "crash", ...).
	Outcome string `json:"outcome,omitempty"`
	// Flag names the completeness flag a FallbackConcrete cleared.
	Flag string `json:"flag,omitempty"`
	// Msg carries the bug message of a BugFound.
	Msg string `json:"msg,omitempty"`
	// Pos is the source position of a BugFound.
	Pos string `json:"pos,omitempty"`
	// Status is the per-function outcome of an AuditFnEnd.
	Status string `json:"status,omitempty"`
	// Bugs is the bug count of an AuditFnEnd.
	Bugs int `json:"bugs,omitempty"`
	// Runs is the run count of an AuditFnEnd, and the completed-run
	// count of a CoverageStall.
	Runs int `json:"runs,omitempty"`
	// Reason is the explain bucket of an UncoveredReason event.
	Reason string `json:"reason,omitempty"`
	// Count is the dark-direction count of an UncoveredReason event.
	Count int `json:"count,omitempty"`
	// Window is the stall detector's plateau window (runs) on a
	// CoverageStall.
	Window int64 `json:"window,omitempty"`
	// Covered is the flat covered-direction count on a CoverageStall.
	Covered int `json:"covered,omitempty"`
}

// Sink receives trace events.  Implementations used from a parallel
// audit must be safe for concurrent use; the bundled sinks are.  A
// panicking sink is isolated by the engine's recover barriers (it is
// reported as an internal fault and observation is disabled), so a
// faulty observer can never take down a search.
type Sink interface {
	Event(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(ev Event) { f(ev) }

// Tee fans every event out to each sink in order.  A nil entry is
// skipped; Tee(nil...) collapses to nil so the engine's one nil-check
// stays sufficient.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

func (t teeSink) Event(ev Event) {
	for _, s := range t {
		s.Event(ev)
	}
}

// Guarded wraps sink so a panic inside Event permanently disables
// forwarding instead of unwinding into the caller.  The engine has its
// own per-search isolation (panics become InternalError diagnostics);
// Guarded is for emitters outside any search — the audit pool's
// function-lifecycle events, the CLI's progress line — where there is
// no report to attach a diagnostic to.  Guarded(nil) is nil.
func Guarded(sink Sink) Sink {
	if sink == nil {
		return nil
	}
	return &guarded{sink: sink}
}

type guarded struct {
	sink Sink
	dead atomic.Bool
}

// Event implements Sink.
func (g *guarded) Event(ev Event) {
	if g.dead.Load() {
		return
	}
	defer func() {
		if recover() != nil {
			g.dead.Store(true)
		}
	}()
	g.sink.Event(ev)
}

// WithJob wraps sink so every event passing through carries the given
// serve-layer job id, letting one shared event ring (and one metrics
// bridge) serve many concurrent jobs while keeping each job's stream
// separable.  WithJob(id, nil) is nil.
func WithJob(id string, sink Sink) Sink {
	if sink == nil {
		return nil
	}
	return SinkFunc(func(ev Event) {
		ev.Job = id
		sink.Event(ev)
	})
}

// NDJSON is a Sink writing one JSON object per line, assigning
// monotonic sequence numbers under a mutex so concurrent audit workers
// produce an interleaved but well-formed, totally ordered stream.  For
// a single-threaded search with a fixed seed the output is
// byte-identical across runs (events carry no wall-clock data and maps
// never appear in the encoding).
type NDJSON struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
	err error
}

// NewNDJSON returns an NDJSON sink writing to w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{w: w}
}

// Event implements Sink.
func (s *NDJSON) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	ev.Seq = s.seq
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Err returns the first write or encoding error, if any.
func (s *NDJSON) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Events returns the number of events written so far.
func (s *NDJSON) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Collector is a Sink accumulating events in memory, mainly for tests
// and for post-hoc analysis (tree reconstruction, multiset checks).
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Event implements Sink.
func (c *Collector) Event(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}
