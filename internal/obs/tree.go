// The explorable execution-tree model: a Sink that reconstructs the
// searched binary tree of branch outcomes from the event stream alone
// (RunEnd paths mark explored prefixes; SolverCall/SolverVerdict pairs
// mark the frontier nodes the search tried to force), and renders it as
// DOT or JSON.  Because it consumes only events, the same tree can be
// rebuilt offline from a recorded -trace file.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Node statuses, in increasing precedence (a node only ever upgrades).
const (
	// StatusPending: the solver proved the node's path feasible (sat)
	// but no run has traversed it yet — pending frontier work.
	StatusPending = "pending"
	// StatusInfeasible: the solve came back unsat; under its fixed
	// prefix the node cannot be reached.
	StatusInfeasible = "infeasible"
	// StatusAbandoned: the solve was abandoned on budget exhaustion —
	// the node may be feasible, but the search gave up on it.
	StatusAbandoned = "abandoned-on-budget"
	// StatusDone: at least one run traversed the node.
	StatusDone = "done"
)

var statusRank = map[string]int{
	"":               0,
	StatusPending:    1,
	StatusInfeasible: 2,
	StatusAbandoned:  3,
	StatusDone:       4,
}

// treeNode is one branch-outcome prefix.
type treeNode struct {
	children [2]*treeNode
	status   string
	// runs counts executions traversing this node.
	runs int
	// outcome is the terminal outcome of runs ending exactly here.
	outcome string
	// work is the solver work spent trying to force this node (summed
	// over SolverVerdicts targeting it) — the cost axis of Flame.
	work int64
}

// Tree is a Sink that reconstructs the explored execution tree.  It is
// safe for concurrent use, though its rendering is only meaningful for
// a single search (an audit interleaves many trees; demultiplex by the
// events' Fn field first).
type Tree struct {
	mu        sync.Mutex
	root      *treeNode
	nodes     int
	maxNodes  int
	truncated bool
	// target remembers the path of the in-flight SolverCall so the
	// following SolverVerdict can mark it.
	target    string
	hasTarget bool
}

// DefaultMaxTreeNodes bounds tree memory; beyond it new paths are
// dropped and the dump is marked truncated.
const DefaultMaxTreeNodes = 1 << 20

// NewTree returns an empty tree builder.  maxNodes <= 0 selects
// DefaultMaxTreeNodes.
func NewTree(maxNodes int) *Tree {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxTreeNodes
	}
	return &Tree{root: &treeNode{}, nodes: 1, maxNodes: maxNodes}
}

// Event implements Sink.
func (t *Tree) Event(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Kind {
	case RunEnd:
		n := t.walk(ev.Path, true)
		if n == nil {
			return
		}
		n.outcome = ev.Outcome
	case SolverCall:
		t.target, t.hasTarget = ev.Path, true
	case SolverVerdict:
		if !t.hasTarget {
			return
		}
		path := t.target
		t.hasTarget = false
		status := StatusPending
		switch ev.Verdict {
		case "unsat":
			status = StatusInfeasible
		case "budget-exhausted":
			status = StatusAbandoned
		}
		if n := t.node(path); n != nil {
			t.upgrade(n, status)
			n.work += ev.Work
		}
	}
}

// walk follows (creating, when create is set) the path from the root,
// marking every node on it done, and returns the final node.
func (t *Tree) walk(path string, create bool) *treeNode {
	n := t.root
	t.upgrade(n, StatusDone)
	n.runs++
	for i := 0; i < len(path); i++ {
		bit := 0
		if path[i] == '1' {
			bit = 1
		}
		if n.children[bit] == nil {
			if !create || t.nodes >= t.maxNodes {
				t.truncated = true
				return nil
			}
			n.children[bit] = &treeNode{}
			t.nodes++
		}
		n = n.children[bit]
		t.upgrade(n, StatusDone)
		n.runs++
	}
	return n
}

// node returns (creating if room) the node at path without marking the
// prefix as traversed.
func (t *Tree) node(path string) *treeNode {
	n := t.root
	for i := 0; i < len(path); i++ {
		bit := 0
		if path[i] == '1' {
			bit = 1
		}
		if n.children[bit] == nil {
			if t.nodes >= t.maxNodes {
				t.truncated = true
				return nil
			}
			n.children[bit] = &treeNode{}
			t.nodes++
		}
		n = n.children[bit]
	}
	return n
}

func (t *Tree) upgrade(n *treeNode, status string) {
	if statusRank[status] > statusRank[n.status] {
		n.status = status
	}
}

// Nodes returns the number of materialized tree nodes.
func (t *Tree) Nodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nodes
}

// jsonNode is the JSON dump shape: a flat list keyed by path, which
// stays readable for wide trees and trivially diffable.
type jsonNode struct {
	Path    string `json:"path"`
	Status  string `json:"status"`
	Runs    int    `json:"runs,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

type jsonTree struct {
	Nodes     int        `json:"nodes"`
	Truncated bool       `json:"truncated,omitempty"`
	Tree      []jsonNode `json:"tree"`
}

// flatten lists every node with its path, depth-first, "0" before "1".
func (t *Tree) flatten() []jsonNode {
	var out []jsonNode
	var rec func(n *treeNode, path string)
	rec = func(n *treeNode, path string) {
		out = append(out, jsonNode{Path: path, Status: n.status, Runs: n.runs, Outcome: n.outcome})
		for bit := 0; bit < 2; bit++ {
			if c := n.children[bit]; c != nil {
				rec(c, path+string('0'+byte(bit)))
			}
		}
	}
	rec(t.root, "")
	return out
}

// JSON renders the tree dump.
func (t *Tree) JSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := t.flatten()
	sort.SliceStable(nodes, func(i, j int) bool {
		if len(nodes[i].Path) != len(nodes[j].Path) {
			return len(nodes[i].Path) < len(nodes[j].Path)
		}
		return nodes[i].Path < nodes[j].Path
	})
	return json.MarshalIndent(jsonTree{Nodes: t.nodes, Truncated: t.truncated, Tree: nodes}, "", "  ")
}

// flameMaxLines caps the Flame rendering so a pathological tree can't
// flood an HTTP response; deeper frames past the cap are elided.
const flameMaxLines = 200

// cumWork is own-plus-descendant solver work — the flamegraph width.
func cumWork(n *treeNode) int64 {
	w := n.work
	for bit := 0; bit < 2; bit++ {
		if c := n.children[bit]; c != nil {
			w += cumWork(c)
		}
	}
	return w
}

// Flame renders the tree as a cost-weighted text flamegraph: one line
// per branch prefix whose subtree consumed solver work, indented by
// depth, with a bar proportional to the subtree's share of total work.
// Zero-work subtrees are pruned — the point is to show where the
// solver budget went, and for DART that is typically a handful of hot
// prefixes among thousands of free flips.
func (t *Tree) Flame() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	total := cumWork(t.root)
	fmt.Fprintf(&b, "solver work flamegraph: %d work total, %d nodes", total, t.nodes)
	if t.truncated {
		b.WriteString(" (truncated)")
	}
	b.WriteString("\n")
	if total == 0 {
		b.WriteString("(no solver work recorded)\n")
		return []byte(b.String())
	}
	const barWidth = 40
	lines := 0
	var rec func(n *treeNode, path string)
	rec = func(n *treeNode, path string) {
		cum := cumWork(n)
		if cum == 0 {
			return
		}
		if lines >= flameMaxLines {
			return
		}
		lines++
		share := float64(cum) / float64(total)
		bar := int(share*barWidth + 0.5)
		if bar == 0 {
			bar = 1
		}
		label := path
		if label == "" {
			label = "(root)"
		}
		fmt.Fprintf(&b, "%s%-*s %8d %5.1f%% %s\n",
			strings.Repeat(" ", len(path)), 24-len(path), label,
			cum, 100*share, strings.Repeat("#", bar))
		for bit := 0; bit < 2; bit++ {
			if c := n.children[bit]; c != nil {
				rec(c, path+string('0'+byte(bit)))
			}
		}
	}
	rec(t.root, "")
	if lines >= flameMaxLines {
		fmt.Fprintf(&b, "... (capped at %d lines)\n", flameMaxLines)
	}
	return []byte(b.String())
}

// dotColor maps a node status to a Graphviz fill color.
func dotColor(status string) string {
	switch status {
	case StatusDone:
		return "palegreen"
	case StatusPending:
		return "khaki"
	case StatusAbandoned:
		return "lightsalmon"
	case StatusInfeasible:
		return "lightgray"
	}
	return "white"
}

// DOT renders the tree as a Graphviz digraph: one node per branch
// prefix, colored by status, edge labels 0/1 for the branch outcome.
func (t *Tree) DOT() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	b.WriteString("digraph dart {\n  node [shape=circle, style=filled, fontsize=10];\n")
	if t.truncated {
		b.WriteString("  label=\"(truncated)\";\n")
	}
	var rec func(n *treeNode, path string)
	rec = func(n *treeNode, path string) {
		name := "root"
		if path != "" {
			name = "n" + path
		}
		label := fmt.Sprintf("%d", n.runs)
		if n.outcome != "" && n.outcome != "halt" {
			label += "\\n" + n.outcome
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\", fillcolor=%s, tooltip=\"path=%s status=%s\"];\n",
			name, label, dotColor(n.status), path, n.status)
		for bit := 0; bit < 2; bit++ {
			c := n.children[bit]
			if c == nil {
				continue
			}
			child := "n" + path + string('0'+byte(bit))
			fmt.Fprintf(&b, "  %s -> %s [label=\"%d\"];\n", name, child, bit)
			rec(c, path+string('0'+byte(bit)))
		}
	}
	rec(t.root, "")
	b.WriteString("}\n")
	return []byte(b.String())
}
