package obs

import (
	"strings"
	"testing"
	"time"
)

// TestProfileNilNoOp: a nil *Profile is a valid no-op collector, the
// same contract as *Metrics — call sites never guard recording.
func TestProfileNilNoOp(t *testing.T) {
	var p *Profile
	p.Span(SpanSolve, time.Second)
	p.RecordSolve(3, "1:1", "sat", 10, 100, "miss")
	p.RecordFlip(3, "1:1")
	if snap := p.Snapshot(); snap != nil {
		t.Fatalf("nil profile snapshot = %+v, want nil", snap)
	}
}

func TestProfileRecordAndSnapshot(t *testing.T) {
	p := NewProfile("f", 2)
	p.Span(SpanExec, 5*time.Millisecond)
	p.Span(SpanExec, 3*time.Millisecond)
	p.Span(SpanSolve, 2*time.Millisecond)
	p.RecordSolve(1, "4:9", "sat", 7, 100, "miss")
	p.RecordSolve(1, "4:9", "unsat", 5, 50, "miss")
	p.RecordSolve(1, "4:9", "sat", 0, 10, "hit")
	p.RecordSolve(0, "2:5", "budget-exhausted", 1000, 900, "")
	p.RecordFlip(1, "4:9")
	p.RecordFlip(1, "4:9")

	snap := p.Snapshot()
	if snap.Workers != 1 {
		t.Errorf("Workers = %d, want 1", snap.Workers)
	}
	// Phases sorted by name.
	if len(snap.Phases) != 2 || snap.Phases[0].Phase != SpanExec || snap.Phases[1].Phase != SpanSolve {
		t.Fatalf("phases = %+v", snap.Phases)
	}
	if snap.Phases[0].Count != 2 || snap.Phases[0].Nanos != int64(8*time.Millisecond) {
		t.Errorf("exec phase = %+v", snap.Phases[0])
	}
	// Sites sorted by (fn, site) and stamped with the toplevel fn.
	if len(snap.Sites) != 2 || snap.Sites[0].Site != 0 || snap.Sites[1].Site != 1 {
		t.Fatalf("sites = %+v", snap.Sites)
	}
	s1 := snap.Sites[1]
	if s1.Fn != "f" || s1.Pos != "4:9" {
		t.Errorf("site 1 identity = %+v", s1)
	}
	if s1.Solves != 3 || s1.SolveNanos != 160 || s1.Work != 12 {
		t.Errorf("site 1 totals = %+v", s1)
	}
	if s1.CacheHits != 1 || s1.CacheMisses != 2 || s1.Sat != 2 || s1.Unsat != 1 || s1.Flips != 2 {
		t.Errorf("site 1 counters = %+v", s1)
	}
	if got := s1.MissRate(); got < 0.66 || got > 0.67 {
		t.Errorf("site 1 miss rate = %v, want 2/3", got)
	}
	s0 := snap.Sites[0]
	if s0.Budget != 1 || s0.CacheHits != 0 || s0.CacheMisses != 0 {
		t.Errorf("site 0 (cache disabled) = %+v", s0)
	}
	if s0.MissRate() != 0 {
		t.Errorf("site 0 miss rate = %v, want 0 (cache never saw it)", s0.MissRate())
	}
}

// TestProfileSnapshotMerge: merging per-worker snapshots sums phases by
// name and sites by (fn, site), and is order-insensitive once timings
// are equal — the determinism contract the parallel search relies on.
func TestProfileSnapshotMerge(t *testing.T) {
	mk := func(worker int) *ProfileSnapshot {
		p := NewProfile("f", worker)
		p.Span(SpanSolve, time.Duration(worker)*time.Millisecond)
		p.RecordSolve(0, "1:1", "sat", int64(worker), 10, "miss")
		p.RecordFlip(0, "1:1")
		return p.Snapshot()
	}
	a, b := mk(1), mk(2)

	ab := &ProfileSnapshot{}
	ab.Merge(a)
	ab.Merge(b)
	ba := &ProfileSnapshot{}
	ba.Merge(b)
	ba.Merge(a)

	if ab.Workers != 2 {
		t.Errorf("merged Workers = %d, want 2", ab.Workers)
	}
	if len(ab.Sites) != 1 || ab.Sites[0].Solves != 2 || ab.Sites[0].Work != 3 || ab.Sites[0].Flips != 2 {
		t.Errorf("merged site = %+v", ab.Sites)
	}
	if len(ab.Phases) != 1 || ab.Phases[0].Count != 2 || ab.Phases[0].Nanos != int64(3*time.Millisecond) {
		t.Errorf("merged phase = %+v", ab.Phases)
	}
	// Order-insensitive.
	if len(ba.Sites) != len(ab.Sites) || ba.Sites[0] != ab.Sites[0] || ba.Phases[0] != ab.Phases[0] {
		t.Errorf("merge not commutative: ab=%+v ba=%+v", ab, ba)
	}
	// Merging a nil is a no-op.
	before := len(ab.Sites)
	ab.Merge(nil)
	if len(ab.Sites) != before || ab.Workers != 2 {
		t.Errorf("nil merge mutated snapshot: %+v", ab)
	}
	// Distinct functions stay distinct rows.
	other := NewProfile("g", 1)
	other.RecordSolve(0, "9:9", "sat", 1, 1, "")
	ab.Merge(other.Snapshot())
	if len(ab.Sites) != 2 || ab.Sites[1].Fn != "g" {
		t.Errorf("cross-fn merge = %+v", ab.Sites)
	}
}

// TestProfileMergeAppendThenUpdate: regression for a lost-update bug —
// when a merge appends an unknown key (reallocating the backing array)
// and then updates a known key, the update must land in the new array,
// not a stale one.  The receiver's slices are at exactly full capacity
// so the first append is guaranteed to reallocate.
func TestProfileMergeAppendThenUpdate(t *testing.T) {
	s := &ProfileSnapshot{
		Phases: []PhaseProfile{{Phase: "solve", Count: 1, Nanos: 10}},
		Sites:  []SiteProfile{{Fn: "f", Site: 5, Solves: 3, Work: 30}},
	}
	// Sorted order puts the unknown keys first, forcing append-before-
	// update inside one Merge call.
	s.Merge(&ProfileSnapshot{
		Phases: []PhaseProfile{{Phase: "exec", Count: 1, Nanos: 1}, {Phase: "solve", Count: 2, Nanos: 20}},
		Sites:  []SiteProfile{{Fn: "a", Site: 0, Solves: 1}, {Fn: "f", Site: 5, Solves: 4, Work: 40}},
	})
	var solve *PhaseProfile
	for i := range s.Phases {
		if s.Phases[i].Phase == "solve" {
			solve = &s.Phases[i]
		}
	}
	if solve == nil || solve.Count != 3 || solve.Nanos != 30 {
		t.Errorf("solve phase after append-then-update merge = %+v", s.Phases)
	}
	var f5 *SiteProfile
	for i := range s.Sites {
		if s.Sites[i].Fn == "f" && s.Sites[i].Site == 5 {
			f5 = &s.Sites[i]
		}
	}
	if f5 == nil || f5.Solves != 7 || f5.Work != 70 {
		t.Errorf("site f/5 after append-then-update merge = %+v", s.Sites)
	}
}

func TestProfileTopSitesAndTable(t *testing.T) {
	p := NewProfile("f", 0)
	p.Span(SpanExec, time.Millisecond)
	p.RecordSolve(0, "1:1", "sat", 1, 10, "miss")
	p.RecordSolve(1, "2:2", "sat", 100, 5000, "miss")
	p.RecordSolve(2, "3:3", "unsat", 50, 2000, "hit")
	snap := p.Snapshot()

	top := snap.TopSites(2)
	if len(top) != 2 || top[0].Site != 1 || top[1].Site != 2 {
		t.Fatalf("TopSites(2) = %+v", top)
	}
	// TopSites must not disturb the snapshot's canonical order.
	if snap.Sites[0].Site != 0 {
		t.Errorf("snapshot reordered by TopSites: %+v", snap.Sites)
	}

	tbl := snap.Table(2)
	for _, want := range []string{"phase breakdown", SpanExec, "top 2 branch sites", "2:2 (f)", "3:3 (f)"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if strings.Contains(tbl, "1:1") {
		t.Errorf("table shows site beyond top-n:\n%s", tbl)
	}
	// An empty profile still renders the phase header without panicking.
	if tbl := (&ProfileSnapshot{}).Table(5); !strings.Contains(tbl, "phase breakdown") {
		t.Errorf("empty table:\n%s", tbl)
	}
}

// TestLiveProfileFold: the ops-side LiveProfile folds the event stream
// into the same per-site counters the engine-side Profile records —
// minus timing and Pos, which events deliberately never carry.
func TestLiveProfileFold(t *testing.T) {
	l := NewLiveProfile()
	// Site is 1-based on the wire; 0 means "not site-attributed".
	l.Event(Event{Kind: SolverVerdict, Fn: "f", Site: 3, Verdict: "sat", Work: 7, Cache: "miss"})
	l.Event(Event{Kind: SolverVerdict, Fn: "f", Site: 3, Verdict: "unsat", Work: 2, Cache: "hit"})
	l.Event(Event{Kind: SolverVerdict, Fn: "f", Site: 1, Verdict: "budget-exhausted", Work: 100})
	l.Event(Event{Kind: BranchFlip, Fn: "f", Site: 3})
	l.Event(Event{Kind: SolverVerdict, Fn: "f", Verdict: "sat", Work: 9}) // unattributed: ignored
	l.Event(Event{Kind: RunEnd, Fn: "f", Site: 3})                       // wrong kind: ignored

	snap := l.Snapshot()
	if len(snap.Sites) != 2 {
		t.Fatalf("live sites = %+v", snap.Sites)
	}
	s0, s2 := snap.Sites[0], snap.Sites[1]
	if s0.Site != 0 || s0.Budget != 1 || s0.Work != 100 {
		t.Errorf("live site 0 = %+v", s0)
	}
	if s2.Site != 2 || s2.Solves != 2 || s2.Work != 9 || s2.Sat != 1 || s2.Unsat != 1 ||
		s2.CacheHits != 1 || s2.CacheMisses != 1 || s2.Flips != 1 {
		t.Errorf("live site 2 = %+v", s2)
	}
	if s2.SolveNanos != 0 || s2.Pos != "" {
		t.Errorf("live profile leaked timing/pos: %+v", s2)
	}
}

// TestTreeFlame: the cost-weighted flamegraph prunes zero-work subtrees
// and apportions bar widths by cumulative solver work.
func TestTreeFlame(t *testing.T) {
	tr := NewTree(0)
	if got := string(tr.Flame()); !strings.Contains(got, "(no solver work recorded)") {
		t.Fatalf("empty flame:\n%s", got)
	}

	// Two runs carve paths 00 and 01; the solver spends 30 work forcing
	// node "01" and 10 forcing "1".  Node "00" costs nothing and must be
	// pruned from the rendering.
	tr.Event(Event{Kind: RunEnd, Path: "00", Outcome: "halt"})
	tr.Event(Event{Kind: SolverCall, Path: "01"})
	tr.Event(Event{Kind: SolverVerdict, Path: "01", Verdict: "sat", Work: 30})
	tr.Event(Event{Kind: SolverCall, Path: "1"})
	tr.Event(Event{Kind: SolverVerdict, Path: "1", Verdict: "unsat", Work: 10})

	out := string(tr.Flame())
	if !strings.Contains(out, "solver work flamegraph: 40 work total") {
		t.Fatalf("flame header:\n%s", out)
	}
	for _, want := range []string{"(root)", "01", "1 "} {
		if !strings.Contains(out, want) {
			t.Errorf("flame missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, ln := range lines[1:] {
		if strings.HasPrefix(strings.TrimSpace(ln), "00") {
			t.Errorf("zero-work subtree not pruned:\n%s", out)
		}
		if !strings.Contains(ln, "#") {
			t.Errorf("flame line without bar: %q", ln)
		}
	}
	// Root accounts for 100% of the work.
	if !strings.Contains(lines[1], "100.0%") {
		t.Errorf("root share: %q", lines[1])
	}
}
