package mem

import (
	"errors"
	"testing"
)

func TestGlobalsZeroFilled(t *testing.T) {
	m := New()
	base := m.MapGlobals(4)
	for i := int64(0); i < 4; i++ {
		v, err := m.Load(base + i)
		if err != nil || v != 0 {
			t.Fatalf("cell %d: v=%d err=%v", i, v, err)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	base := m.MapGlobals(2)
	if err := m.Store(base, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(base)
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestNullDereference(t *testing.T) {
	m := New()
	if _, err := m.Load(0); err == nil {
		t.Fatal("NULL read did not fault")
	} else {
		var f *Fault
		if !errors.As(err, &f) || f.Kind != LoadFault {
			t.Fatalf("wrong fault: %v", err)
		}
	}
	if err := m.Store(0, 1); err == nil {
		t.Fatal("NULL write did not fault")
	}
}

func TestUnmappedAccess(t *testing.T) {
	m := New()
	base, err := m.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	// Within the region: fine.
	if _, err := m.Load(base + 1); err != nil {
		t.Fatal(err)
	}
	// One past the end: guard gap faults (heap overflow detection).
	if _, err := m.Load(base + 2); err == nil {
		t.Fatal("overflow read did not fault")
	}
	if err := m.Store(base+2, 9); err == nil {
		t.Fatal("overflow write did not fault")
	}
}

func TestAllocDistinct(t *testing.T) {
	m := New()
	a, _ := m.Alloc(1)
	b, _ := m.Alloc(1)
	if a == b {
		t.Fatal("two allocations share an address")
	}
	if a == 0 || b == 0 {
		t.Fatal("allocation returned NULL")
	}
}

func TestAllocZeroSize(t *testing.T) {
	m := New()
	a, err := m.Alloc(0)
	if err != nil || a == 0 {
		t.Fatalf("malloc(0): a=%d err=%v", a, err)
	}
	b, _ := m.Alloc(0)
	if a == b {
		t.Fatal("malloc(0) results should be distinct")
	}
}

func TestAllocNegative(t *testing.T) {
	m := New()
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("negative allocation should fail")
	}
}

func TestFree(t *testing.T) {
	m := New()
	a, _ := m.Alloc(3)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(a); err == nil {
		t.Fatal("use after free did not fault")
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free did not fault")
	}
	if err := m.Free(0); err != nil {
		t.Fatalf("free(NULL) must be a no-op, got %v", err)
	}
	if err := m.Free(12345); err == nil {
		t.Fatal("freeing a wild pointer did not fault")
	}
	// Freeing an interior pointer is a fault too.
	b, _ := m.Alloc(3)
	if err := m.Free(b + 1); err == nil {
		t.Fatal("freeing an interior pointer did not fault")
	}
}

func TestFrames(t *testing.T) {
	m := New()
	f1 := m.PushFrame(4)
	if err := m.Store(f1+3, 7); err != nil {
		t.Fatal(err)
	}
	f2 := m.PushFrame(2)
	if f2 <= f1 {
		t.Fatal("frames should grow upward")
	}
	m.PopFrame(f2, 2)
	if _, err := m.Load(f2); err == nil {
		t.Fatal("popped frame still accessible")
	}
	// Pushing again reuses the address space, zero-filled.
	f3 := m.PushFrame(2)
	if f3 != f2 {
		t.Fatalf("expected frame address reuse: %d vs %d", f3, f2)
	}
	v, err := m.Load(f3)
	if err != nil || v != 0 {
		t.Fatalf("recycled frame not zeroed: v=%d err=%v", v, err)
	}
	m.PopFrame(f3, 2)
	m.PopFrame(f1, 4)
}

func TestRegionsDisjoint(t *testing.T) {
	m := New()
	g := m.MapGlobals(10)
	f := m.PushFrame(10)
	h, _ := m.Alloc(10)
	if !(g < f && f < h) {
		t.Fatalf("layout order violated: g=%d f=%d h=%d", g, f, h)
	}
}

func TestLiveRegions(t *testing.T) {
	m := New()
	a, _ := m.Alloc(1)
	_, _ = m.Alloc(1)
	if m.LiveRegions() != 2 {
		t.Fatalf("live = %d", m.LiveRegions())
	}
	_ = m.Free(a)
	if m.LiveRegions() != 1 {
		t.Fatalf("live = %d after free", m.LiveRegions())
	}
}

func TestFaultMessages(t *testing.T) {
	nullRead := &Fault{Kind: LoadFault, Addr: 0}
	if got := nullRead.Error(); got != "segmentation fault: NULL pointer invalid read" {
		t.Errorf("message %q", got)
	}
	wild := &Fault{Kind: StoreFault, Addr: 99}
	if got := wild.Error(); got != "segmentation fault: invalid write at address 99" {
		t.Errorf("message %q", got)
	}
}
