// Package mem implements the RAM-machine memory M of Sec. 2.2: a mapping
// from addresses to word values, updated with M + [m -> v].
//
// The address space is partitioned into a global region, a stack of call
// frames, and a heap.  Only explicitly mapped cells are accessible;
// loads or stores elsewhere fault, which is how DART observes the crash
// bugs (NULL and wild pointer dereferences) of the oSIP experiment.
// Heap regions are separated by guard gaps so small overflows fault
// instead of silently landing in a neighboring object.
package mem

import "fmt"

// Address space layout (cell addresses).
const (
	GlobalBase = int64(1) << 20
	StackBase  = int64(1) << 24
	HeapBase   = int64(1) << 28

	// guardGap is the number of unmapped cells between heap regions.
	guardGap = 16
)

// FaultKind classifies a memory fault.
type FaultKind int

// Fault kinds.
const (
	LoadFault FaultKind = iota
	StoreFault
	FreeFault
	OOMFault
)

func (k FaultKind) String() string {
	switch k {
	case LoadFault:
		return "invalid read"
	case StoreFault:
		return "invalid write"
	case FreeFault:
		return "invalid free"
	case OOMFault:
		return "allocation failure"
	}
	return "memory fault"
}

// Fault is a memory access error; address 0 faults are NULL dereferences.
type Fault struct {
	Kind FaultKind
	Addr int64
}

func (f *Fault) Error() string {
	if f.Addr == 0 && (f.Kind == LoadFault || f.Kind == StoreFault) {
		return fmt.Sprintf("segmentation fault: NULL pointer %s", f.Kind)
	}
	return fmt.Sprintf("segmentation fault: %s at address %d", f.Kind, f.Addr)
}

// M is the machine memory.
type M struct {
	cells map[int64]int64

	globalNext int64
	stackNext  int64
	heapNext   int64

	// regions maps live heap region bases to their sizes.
	regions map[int64]int64
}

// New returns an empty memory.
func New() *M {
	return &M{
		cells:      map[int64]int64{},
		globalNext: GlobalBase,
		stackNext:  StackBase,
		heapNext:   HeapBase,
		regions:    map[int64]int64{},
	}
}

// MapGlobals maps the global region of the given size (zero-filled) and
// returns its base address.
func (m *M) MapGlobals(size int64) int64 {
	base := m.globalNext
	for i := int64(0); i < size; i++ {
		m.cells[base+i] = 0
	}
	m.globalNext += size + guardGap
	return base
}

// PushFrame maps a fresh zero-filled call frame and returns its base.
func (m *M) PushFrame(size int64) int64 {
	base := m.stackNext
	for i := int64(0); i < size; i++ {
		m.cells[base+i] = 0
	}
	m.stackNext += size + guardGap
	return base
}

// PopFrame unmaps the topmost frame previously pushed at base.
func (m *M) PopFrame(base, size int64) {
	for i := int64(0); i < size; i++ {
		delete(m.cells, base+i)
	}
	m.stackNext = base
}

// Alloc maps a heap region of size cells (zero-filled, matching calloc-ish
// determinism so runs are reproducible) and returns its base address.
// Size 0 yields a unique 1-cell region, as malloc(0) may.
func (m *M) Alloc(size int64) (int64, error) {
	if size < 0 {
		return 0, &Fault{Kind: OOMFault, Addr: size}
	}
	if size == 0 {
		size = 1
	}
	base := m.heapNext
	for i := int64(0); i < size; i++ {
		m.cells[base+i] = 0
	}
	m.heapNext += size + guardGap
	m.regions[base] = size
	return base, nil
}

// Free unmaps the heap region at base. Freeing NULL is a no-op; freeing
// anything that is not a live region base is a fault (double free or
// interior pointer).
func (m *M) Free(base int64) error {
	if base == 0 {
		return nil
	}
	size, ok := m.regions[base]
	if !ok {
		return &Fault{Kind: FreeFault, Addr: base}
	}
	for i := int64(0); i < size; i++ {
		delete(m.cells, base+i)
	}
	delete(m.regions, base)
	return nil
}

// Load reads the cell at addr.
func (m *M) Load(addr int64) (int64, error) {
	v, ok := m.cells[addr]
	if !ok {
		return 0, &Fault{Kind: LoadFault, Addr: addr}
	}
	return v, nil
}

// Store writes v to the cell at addr.
func (m *M) Store(addr, v int64) error {
	if _, ok := m.cells[addr]; !ok {
		return &Fault{Kind: StoreFault, Addr: addr}
	}
	m.cells[addr] = v
	return nil
}

// Mapped reports whether addr is currently accessible.
func (m *M) Mapped(addr int64) bool {
	_, ok := m.cells[addr]
	return ok
}

// LiveRegions returns the number of live heap regions (for leak stats).
func (m *M) LiveRegions() int { return len(m.regions) }
