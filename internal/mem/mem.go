// Package mem implements the RAM-machine memory M of Sec. 2.2: a mapping
// from addresses to word values, updated with M + [m -> v].
//
// The address space is partitioned into a global region, a stack of call
// frames, and a heap.  Only explicitly mapped cells are accessible;
// loads or stores elsewhere fault, which is how DART observes the crash
// bugs (NULL and wild pointer dereferences) of the oSIP experiment.
// Heap regions are separated by guard gaps so small overflows fault
// instead of silently landing in a neighboring object.
//
// Each of the three regions is a flat array of cells plus two bitmaps:
// "mapped" (is the cell accessible) and "taint" (does the cell carry a
// live symbolic shadow value in the machine's S map).  The taint bitmap
// is what lets the execution engine skip symbolic shadow evaluation for
// instructions whose operands are provably concrete: a load from an
// untainted cell can only produce a constant shadow.  Unmapping (frame
// pop, free, Reset) clears taint word-at-a-time, so stale shadow map
// entries above a popped frame are dead by construction.
package mem

import "fmt"

// Address space layout (cell addresses).
const (
	GlobalBase = int64(1) << 20
	StackBase  = int64(1) << 24
	HeapBase   = int64(1) << 28

	// guardGap is the number of unmapped cells between heap regions.
	guardGap = 16
)

// FaultKind classifies a memory fault.
type FaultKind int

// Fault kinds.
const (
	LoadFault FaultKind = iota
	StoreFault
	FreeFault
	OOMFault
)

func (k FaultKind) String() string {
	switch k {
	case LoadFault:
		return "invalid read"
	case StoreFault:
		return "invalid write"
	case FreeFault:
		return "invalid free"
	case OOMFault:
		return "allocation failure"
	}
	return "memory fault"
}

// Fault is a memory access error; address 0 faults are NULL dereferences.
type Fault struct {
	Kind FaultKind
	Addr int64
}

func (f *Fault) Error() string {
	if f.Addr == 0 && (f.Kind == LoadFault || f.Kind == StoreFault) {
		return fmt.Sprintf("segmentation fault: NULL pointer %s", f.Kind)
	}
	return fmt.Sprintf("segmentation fault: %s at address %d", f.Kind, f.Addr)
}

// region is one contiguous slab of the address space.  vals holds cell
// values; mapped and taint are per-cell bitmaps (64 cells per word).
// Slices only ever grow (high-water mark); Reset zeroes the bitmaps but
// keeps the capacity so a pooled machine's N runs share one footprint.
type region struct {
	base   int64
	vals   []int64
	mapped []uint64
	taint  []uint64
}

func words(cells int64) int64 { return (cells + 63) >> 6 }

func getBit(w []uint64, i int64) bool { return w[i>>6]&(1<<uint(i&63)) != 0 }
func setBit(w []uint64, i int64)      { w[i>>6] |= 1 << uint(i&63) }
func clearBit(w []uint64, i int64)    { w[i>>6] &^= 1 << uint(i&63) }

// setRange sets bits [lo, hi) word-at-a-time.
func setRange(w []uint64, lo, hi int64) {
	for i := lo; i < hi; {
		if i&63 == 0 && hi-i >= 64 {
			w[i>>6] = ^uint64(0)
			i += 64
			continue
		}
		setBit(w, i)
		i++
	}
}

// clearRange clears bits [lo, hi) word-at-a-time.
func clearRange(w []uint64, lo, hi int64) {
	for i := lo; i < hi; {
		if i&63 == 0 && hi-i >= 64 {
			w[i>>6] = 0
			i += 64
			continue
		}
		clearBit(w, i)
		i++
	}
}

// ensure grows the region's backing arrays to cover at least n cells.
func (r *region) ensure(n int64) {
	if int64(len(r.vals)) >= n {
		return
	}
	if int64(cap(r.vals)) >= n {
		r.vals = r.vals[:n]
	} else {
		nv := make([]int64, n, n+n/2)
		copy(nv, r.vals)
		r.vals = nv
	}
	nw := words(int64(len(r.vals)))
	for int64(len(r.mapped)) < nw {
		r.mapped = append(r.mapped, 0)
	}
	for int64(len(r.taint)) < nw {
		r.taint = append(r.taint, 0)
	}
}

// mapRange makes cells [off, off+n) accessible, zero-filled and untainted.
func (r *region) mapRange(off, n int64) {
	r.ensure(off + n)
	for i := off; i < off+n; i++ {
		r.vals[i] = 0
	}
	setRange(r.mapped, off, off+n)
	clearRange(r.taint, off, off+n)
}

// unmapRange makes cells [off, off+n) inaccessible and drops their taint.
func (r *region) unmapRange(off, n int64) {
	clearRange(r.mapped, off, off+n)
	clearRange(r.taint, off, off+n)
}

// reset unmaps everything, keeping the high-water capacity.
func (r *region) reset() {
	for i := range r.mapped {
		r.mapped[i] = 0
	}
	for i := range r.taint {
		r.taint[i] = 0
	}
}

// M is the machine memory.
type M struct {
	global region
	stack  region
	heap   region

	globalNext int64
	stackNext  int64
	heapNext   int64

	// regions maps live heap region bases to their sizes.
	regions map[int64]int64
}

// New returns an empty memory.
func New() *M {
	return &M{
		global:     region{base: GlobalBase},
		stack:      region{base: StackBase},
		heap:       region{base: HeapBase},
		globalNext: GlobalBase,
		stackNext:  StackBase,
		heapNext:   HeapBase,
		regions:    map[int64]int64{},
	}
}

// Reset unmaps everything — globals, frames, heap regions, and all taint
// bits — restoring the address allocators, while keeping the backing
// arrays' capacity so a pooled machine reuses one allocation footprint.
func (m *M) Reset() {
	m.global.reset()
	m.stack.reset()
	m.heap.reset()
	m.globalNext = GlobalBase
	m.stackNext = StackBase
	m.heapNext = HeapBase
	clear(m.regions)
}

// locate resolves addr to its region and cell offset; ok is false when
// the address lies outside every region's mapped span.
func (m *M) locate(addr int64) (r *region, off int64, ok bool) {
	switch {
	case addr >= HeapBase:
		r, off = &m.heap, addr-HeapBase
	case addr >= StackBase:
		r, off = &m.stack, addr-StackBase
	case addr >= GlobalBase:
		r, off = &m.global, addr-GlobalBase
	default:
		return nil, 0, false
	}
	if off >= int64(len(r.vals)) || !getBit(r.mapped, off) {
		return nil, 0, false
	}
	return r, off, true
}

// MapGlobals maps the global region of the given size (zero-filled) and
// returns its base address.
func (m *M) MapGlobals(size int64) int64 {
	base := m.globalNext
	m.global.mapRange(base-GlobalBase, size)
	m.globalNext += size + guardGap
	return base
}

// PushFrame maps a fresh zero-filled call frame and returns its base.
func (m *M) PushFrame(size int64) int64 {
	base := m.stackNext
	if base+size >= HeapBase {
		// The machine's call-depth limit trips long before 16M stack
		// cells; running past the heap base would alias regions.
		panic("mem: stack region exhausted")
	}
	m.stack.mapRange(base-StackBase, size)
	m.stackNext += size + guardGap
	return base
}

// PopFrame unmaps the topmost frame previously pushed at base.
func (m *M) PopFrame(base, size int64) {
	m.stack.unmapRange(base-StackBase, size)
	m.stackNext = base
}

// Alloc maps a heap region of size cells (zero-filled, matching calloc-ish
// determinism so runs are reproducible) and returns its base address.
// Size 0 yields a unique 1-cell region, as malloc(0) may.
func (m *M) Alloc(size int64) (int64, error) {
	if size < 0 {
		return 0, &Fault{Kind: OOMFault, Addr: size}
	}
	if size == 0 {
		size = 1
	}
	base := m.heapNext
	m.heap.mapRange(base-HeapBase, size)
	m.heapNext += size + guardGap
	m.regions[base] = size
	return base, nil
}

// Free unmaps the heap region at base. Freeing NULL is a no-op; freeing
// anything that is not a live region base is a fault (double free or
// interior pointer).
func (m *M) Free(base int64) error {
	if base == 0 {
		return nil
	}
	size, ok := m.regions[base]
	if !ok {
		return &Fault{Kind: FreeFault, Addr: base}
	}
	m.heap.unmapRange(base-HeapBase, size)
	delete(m.regions, base)
	return nil
}

// Load reads the cell at addr.
func (m *M) Load(addr int64) (int64, error) {
	r, off, ok := m.locate(addr)
	if !ok {
		return 0, &Fault{Kind: LoadFault, Addr: addr}
	}
	return r.vals[off], nil
}

// LoadT reads the cell at addr together with its taint bit, in one
// address decode — the hot-path entry for the compiled engine.
func (m *M) LoadT(addr int64) (v int64, tainted bool, err error) {
	r, off, ok := m.locate(addr)
	if !ok {
		return 0, false, &Fault{Kind: LoadFault, Addr: addr}
	}
	return r.vals[off], getBit(r.taint, off), nil
}

// Store writes v to the cell at addr.
func (m *M) Store(addr, v int64) error {
	r, off, ok := m.locate(addr)
	if !ok {
		return &Fault{Kind: StoreFault, Addr: addr}
	}
	r.vals[off] = v
	return nil
}

// SetTaint marks the mapped cell at addr as carrying a live symbolic
// shadow value. Unmapped addresses are ignored (the paired Store faulted
// first).
func (m *M) SetTaint(addr int64) {
	if r, off, ok := m.locate(addr); ok {
		setBit(r.taint, off)
	}
}

// ClearTaint marks the cell at addr as concrete.
func (m *M) ClearTaint(addr int64) {
	if r, off, ok := m.locate(addr); ok {
		clearBit(r.taint, off)
	}
}

// Tainted reports whether the cell at addr carries a live shadow value.
func (m *M) Tainted(addr int64) bool {
	r, off, ok := m.locate(addr)
	return ok && getBit(r.taint, off)
}

// Mapped reports whether addr is currently accessible.
func (m *M) Mapped(addr int64) bool {
	_, _, ok := m.locate(addr)
	return ok
}

// LiveRegions returns the number of live heap regions (for leak stats).
func (m *M) LiveRegions() int { return len(m.regions) }
